"""Algorithm 2 — greedy valid variable selection for forests (§3.2).

The multi-tree optimization problem is NP-hard (Proposition 11 /
Appendix A), so the paper proposes a greedy heuristic: start from the
identity cut (all leaves), and repeatedly replace a set of sibling nodes
by their parent, always choosing the *candidate* parent (a node all of
whose children are currently chosen) that entails the minimal variable
loss, until the provenance is small enough or no candidate remains.

A subtlety the paper's Example 15 exposes: with multiple trees the
cumulative monomial loss is **not** the sum of per-tree losses — merges
compose across trees (after months collapse into a quarter, the two
business plans sit in *one* monomial pair instead of two). The
implementation therefore maintains a *working state*: the polynomials
abstracted by the current cut, with an inverted variable→monomial index,
and applies each chosen candidate incrementally. This also matches the
paper's complexity claim of ``O(n · |P|_M)`` work per candidate
application.

Tie-breaking: candidates are compared by (minimal incremental VL,
maximal incremental ML, label) — the ML tie-break reproduces Example 15,
where ``q1`` (VL 1, ML 7) is preferred over ``SB`` (VL 1, ML 2).

Candidate ranking is *incremental*. Two structural facts make ranks
cheap to maintain exactly (for compatible inputs, §2.2):

* a candidate's ΔVL is **constant** from the moment it becomes a
  candidate: merges elsewhere rewrite monomials but never erase a
  selected variable's last occurrence (a rewritten monomial keeps every
  non-member variable, and a collision survivor holds the same ones);
* a candidate's ΔML equals ``n − d``, where ``n`` counts the monomials
  holding one of its children and ``d`` counts the distinct *collision
  classes* ``(polynomial, exponent, residue)`` — two monomials merge
  under the candidate exactly when the member variable carries the same
  exponent and the rest of the key (the residue) is identical. Both
  are plain counters, updated in O(1) per monomial rewrite.

:func:`greedy_vvs` keeps ``(ΔVL, −ΔML, label)`` ranks in a priority
queue, updates the counters of exactly the candidates whose children
occur in the monomials a merge touches, and re-ranks those — the same
cuts as the full per-round rescan, without re-simulating any candidate.
The literal rescan survives as :func:`_reference_greedy`; property
tests assert the two produce byte-identical results, and
``benchmarks/bench_regression.py`` measures the gap.
"""

from __future__ import annotations

import heapq

from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.interning import VARIABLES
from repro.core.tree import AbstractionTree
from repro.algorithms.result import AbstractionResult

__all__ = ["greedy_vvs", "GreedyStep"]


class GreedyStep:
    """One iteration of the greedy loop (kept in ``result.trace``)."""

    __slots__ = ("chosen", "delta_ml", "delta_vl", "cumulative_ml", "cumulative_vl")

    def __init__(self, chosen, delta_ml, delta_vl, cumulative_ml, cumulative_vl):
        self.chosen = chosen
        self.delta_ml = delta_ml
        self.delta_vl = delta_vl
        self.cumulative_ml = cumulative_ml
        self.cumulative_vl = cumulative_vl

    def __repr__(self):
        return (
            f"GreedyStep({self.chosen!r}, dML={self.delta_ml}, "
            f"dVL={self.delta_vl}, ML={self.cumulative_ml}, VL={self.cumulative_vl})"
        )


class _WorkingState:
    """The polynomials under the current cut, updatable in place.

    * ``polys`` — one ``set`` of monomial keys per polynomial, where a
      key is a tuple of ``(var_id, exponent)`` pairs (sorted by interned
      id) with leaf variables replaced by their current group
      representative;
    * ``index`` — representative/variable id → set of ``(poly, key)``
      pairs for every monomial the variable occurs in.

    Merging sibling groups into a parent rewrites exactly the indexed
    monomials; identical rewrites collapse, which is the monomial loss.
    """

    __slots__ = ("polys", "index")

    def __init__(self, polynomials):
        self.polys = []
        self.index = {}
        for poly_number, polynomial in enumerate(polynomials):
            keys = set()
            for monomial in polynomial.monomials:
                key = monomial.key
                keys.add(key)
                for vid, _ in key:
                    self.index.setdefault(vid, set()).add((poly_number, key))
            self.polys.append(keys)

    @property
    def size(self):
        """``|P↓S|_M`` under the current cut."""
        return sum(len(keys) for keys in self.polys)

    @property
    def granularity(self):
        """``|P↓S|_V`` under the current cut."""
        return sum(1 for entries in self.index.values() if entries)

    def present(self, variable):
        """Does ``variable`` occur in the current abstracted polynomials?"""
        vid = VARIABLES.lookup(variable)
        return vid is not None and bool(self.index.get(vid))

    def present_id(self, vid):
        """Id-addressed :meth:`present` (the greedy's hot path)."""
        return bool(self.index.get(vid))

    def _rewrites(self, group_ids, parent_id):
        """Yield ``(poly, old_key, new_key)`` for merging the group.

        Forest compatibility guarantees a monomial holds at most one
        variable of the tree, hence exactly one member of the group.
        """
        members = set(group_ids)
        seen = set()
        for member in group_ids:
            for entry in self.index.get(member, ()):
                if entry in seen:
                    continue
                seen.add(entry)
                poly_number, key = entry
                new_key = tuple(
                    sorted(
                        (parent_id if vid in members else vid, exp)
                        for vid, exp in key
                    )
                )
                yield poly_number, key, new_key

    def simulate_merge(self, group_ids, parent_id):
        """Incremental ML of merging the group (no mutation)."""
        per_poly_old = {}
        per_poly_new = {}
        for poly_number, _, new_key in self._rewrites(group_ids, parent_id):
            per_poly_old[poly_number] = per_poly_old.get(poly_number, 0) + 1
            per_poly_new.setdefault(poly_number, set()).add(new_key)
        loss = 0
        for poly_number, count in per_poly_old.items():
            survivors = per_poly_new[poly_number]
            # A rewrite may also collide with an untouched monomial that
            # already equals the new key (possible only if parent == an
            # existing variable, which compatibility rules out) — so the
            # survivor count is just the distinct rewritten keys.
            loss += count - len(survivors)
        return loss

    def apply_merge(self, group_ids, parent_id):
        """Merge the group into the parent; return ``(loss, rewrites)``.

        ``rewrites`` lists ``(poly, old_key, new_key, survived)`` for
        every touched monomial — ``survived`` is False when the rewrite
        collided with an already-rewritten sibling (the monomial loss).
        The caller can replay the list to update derived structures
        (the greedy's candidate rank counters).
        """
        rewrites = []
        loss = 0
        for poly_number, old_key, new_key in list(
            self._rewrites(group_ids, parent_id)
        ):
            keys = self.polys[poly_number]
            keys.discard(old_key)
            if new_key in keys:
                loss += 1
                survived = False
            else:
                keys.add(new_key)
                survived = True
            rewrites.append((poly_number, old_key, new_key, survived))
            # Re-index every variable of the rewritten monomial.
            for vid, _ in old_key:
                entries = self.index.get(vid)
                if entries is not None:
                    entries.discard((poly_number, old_key))
            for vid, _ in new_key:
                self.index.setdefault(vid, set()).add((poly_number, new_key))
        for member in set(group_ids):
            if member != parent_id:
                self.index.pop(member, None)
        return loss, rewrites


class _Candidate:
    """A candidate parent with its incrementally-maintained rank.

    ``delta_vl`` is fixed at creation (see the module docstring);
    ``delta_ml == n - d`` is kept exact by counting the collision
    classes of the monomials holding one of the candidate's children:
    ``counts`` maps ``(poly, exponent, residue)`` — the member's
    exponent and the key with the member's pair removed — to its
    multiplicity, ``n`` sums the multiplicities and ``d`` counts the
    distinct classes.
    """

    __slots__ = ("label", "children_ids", "delta_vl", "n", "d", "counts")

    def __init__(self, label, children_ids, delta_vl):
        self.label = label
        self.children_ids = children_ids
        self.delta_vl = delta_vl
        self.n = 0
        self.d = 0
        self.counts = {}

    def rank(self):
        return (self.delta_vl, self.d - self.n, self.label)

    def add_entry(self, poly_number, key, member):
        self._bump(poly_number, key, member, 1)

    def remove_entry(self, poly_number, key, member):
        self._bump(poly_number, key, member, -1)

    def _bump(self, poly_number, key, member, sign):
        for position, (vid, exp) in enumerate(key):
            if vid == member:
                cls = (poly_number, exp, key[:position] + key[position + 1:])
                break
        else:  # pragma: no cover - index invariant: member occurs in key
            raise AssertionError("indexed monomial lost its member variable")
        counts = self.counts
        if sign > 0:
            updated = counts.get(cls, 0) + 1
            counts[cls] = updated
            self.n += 1
            if updated == 1:
                self.d += 1
        else:
            updated = counts[cls] - 1
            if updated:
                counts[cls] = updated
            else:
                del counts[cls]
                self.d -= 1
            self.n -= 1


def _plan(polynomials, forest, bound, clean):
    """Normalize the inputs; no working state yet (shared by backends)."""
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        forest = forest.clean(polynomials)

    selected = set(forest.leaf_labels)
    trees = {}
    candidates = set()
    for tree in forest:
        for label in tree.labels:
            trees[label] = tree
            node = tree.node(label)
            if node.children and all(
                child.label in selected for child in node.children
            ):
                candidates.add(label)
    return polynomials, forest, selected, trees, candidates


def _prepare(polynomials, forest, bound, clean):
    """Shared setup of the object-path greedy variants."""
    polynomials, forest, selected, trees, candidates = _plan(
        polynomials, forest, bound, clean
    )
    state = _WorkingState(polynomials)
    return polynomials, forest, state, selected, trees, candidates


def _finish(polynomials, forest, state, selected, trace):
    vvs = ValidVariableSet(forest, frozenset(selected), _validated=True)
    size = state.size
    granularity = state.granularity
    return AbstractionResult(
        vvs=vvs,
        monomial_loss=polynomials.num_monomials - size,
        variable_loss=polynomials.num_variables - granularity,
        abstracted_size=size,
        abstracted_granularity=granularity,
        trace=trace,
    )


def greedy_vvs(polynomials, forest, bound, *, clean=True, ml_tie_break=True,
               backend="auto"):
    """Greedy multi-tree abstraction (Algorithm 2), incremental ranking.

    :param polynomials: a :class:`Polynomial` or :class:`PolynomialSet`.
    :param forest: an :class:`AbstractionForest` (a single
        :class:`AbstractionTree` is accepted and wrapped).
    :param bound: desired maximum number of monomials ``B``.
    :param clean: apply footnote 1 before running.
    :param ml_tie_break: break VL ties by each tied candidate's monomial
        loss, preferring the largest (the Example 15 behaviour).
        Disabling it breaks ties by label only — no ML bookkeeping at
        all, possibly more rounds and worse cuts; the ablation benchmark
        quantifies the trade.
    :param backend: ``"object"`` runs the dict-of-sets working state
        below, ``"columnar"`` the flat-array state of
        :mod:`repro.core.columnar` (identical cuts, traces and losses —
        only the work schedule differs), ``"auto"`` (the default) picks
        columnar for large multisets. The columnar state requires
        forest compatibility (at most one node of each tree per
        monomial); ``"auto"`` silently falls back to the object path
        when that fails, an explicit ``"columnar"`` raises.

    Unlike :func:`repro.algorithms.optimal.optimal_vvs`, the greedy
    never raises for an unreachable bound — it abstracts as far as the
    forest allows and returns the final cut (check
    ``result.abstracted_size`` against your bound), mirroring the
    paper's "while ML(S) < k and C ≠ ∅" loop, which simply terminates
    when candidates run out.

    Candidate ranks are maintained incrementally (see the module
    docstring): applying a merge updates the collision counters of
    exactly the candidates whose children occur in the rewritten
    monomials, each in O(1) per monomial. The selected cuts, traces and
    losses are byte-identical to :func:`_reference_greedy` on compatible
    inputs (§2.2 — at most one variable of a tree per monomial).

    >>> from repro.core.parser import parse_set
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"])
    >>> tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
    >>> result = greedy_vvs(polys, tree, bound=2)
    >>> sorted(result.vvs.labels), result.abstracted_size
    (['SB'], 2)
    """
    from repro.core.columnar import ColumnarUnsupportedError, resolve_backend

    resolved = resolve_backend(
        backend, ensure_set(polynomials).num_monomials
    )
    if resolved == "columnar":
        try:
            return _columnar_greedy(
                polynomials, forest, bound, clean=clean,
                ml_tie_break=ml_tie_break,
            )
        except ColumnarUnsupportedError:
            if backend == "columnar":
                raise
    return _object_greedy(
        polynomials, forest, bound, clean=clean, ml_tie_break=ml_tie_break
    )


def _object_greedy(polynomials, forest, bound, *, clean=True, ml_tie_break=True):
    """The incremental greedy over the dict-of-sets working state."""
    polynomials, forest, state, selected, trees, initial = _prepare(
        polynomials, forest, bound, clean
    )
    k = polynomials.num_monomials - bound
    trace = []
    intern = VARIABLES.intern

    candidates = {}  # label -> _Candidate
    watchers = {}  # child var id -> the (unique) _Candidate watching it
    ranks = {}  # label -> rank tuple currently in force
    heap = []

    def add_candidate(label):
        ids = tuple(intern(child) for child in trees[label].children(label))
        present = sum(1 for vid in ids if state.present_id(vid))
        candidate = _Candidate(label, ids, max(0, present - 1))
        if ml_tie_break:
            for vid in ids:
                for poly_number, key in state.index.get(vid, ()):
                    candidate.add_entry(poly_number, key, vid)
        for vid in ids:
            watchers[vid] = candidate
        candidates[label] = candidate
        rank = candidate.rank()
        ranks[label] = rank
        heapq.heappush(heap, rank)

    for label in sorted(initial):
        add_candidate(label)

    cumulative_ml = 0
    cumulative_vl = 0
    while cumulative_ml < k and candidates:
        # Pop until the top entry is in force (stale entries are left
        # behind whenever a touched candidate was re-ranked).
        while True:
            rank = heapq.heappop(heap)
            label = rank[2]
            if ranks.get(label) == rank and label in candidates:
                break
        delta_vl, _, chosen = rank

        candidate = candidates.pop(chosen)
        ranks.pop(chosen, None)
        for vid in candidate.children_ids:
            watchers.pop(vid, None)
        loss, rewrites = state.apply_merge(
            candidate.children_ids, intern(chosen)
        )

        # Update the collision counters of every candidate watching a
        # variable of a touched monomial (at most one per tree per
        # monomial — the parent of the variable the monomial holds).
        touched = set()
        if ml_tie_break:
            for poly_number, old_key, new_key, survived in rewrites:
                for vid, _ in old_key:
                    watcher = watchers.get(vid)
                    if watcher is not None:
                        watcher.remove_entry(poly_number, old_key, vid)
                        touched.add(watcher)
                if survived:
                    for vid, _ in new_key:
                        watcher = watchers.get(vid)
                        if watcher is not None:
                            watcher.add_entry(poly_number, new_key, vid)
                            touched.add(watcher)

        children = trees[chosen].children(chosen)
        selected.difference_update(children)
        selected.add(chosen)
        cumulative_ml += loss
        cumulative_vl += delta_vl
        trace.append(
            GreedyStep(chosen, loss, delta_vl, cumulative_ml, cumulative_vl)
        )

        for watcher in touched:
            rank = watcher.rank()
            if rank != ranks[watcher.label]:
                ranks[watcher.label] = rank
                heapq.heappush(heap, rank)

        tree = trees[chosen]
        parent = tree.parent(chosen)
        if parent is not None and all(
            child in selected for child in tree.children(parent)
        ):
            add_candidate(parent)

    return _finish(polynomials, forest, state, selected, trace)


def _reference_greedy(polynomials, forest, bound, *, clean=True, ml_tie_break=True):
    """The per-round full-rescan greedy (Algorithm 2 as first written).

    Re-ranks and re-simulates *every* candidate each round —
    O(rounds · |C| · |P|_M). Kept as an executable specification:
    property tests assert :func:`greedy_vvs` matches it exactly, and the
    regression benchmark reports the speedup of the incremental version.
    """
    polynomials, forest, state, selected, trees, candidates = _prepare(
        polynomials, forest, bound, clean
    )
    k = polynomials.num_monomials - bound
    trace = []
    intern = VARIABLES.intern

    cumulative_ml = 0
    cumulative_vl = 0
    while cumulative_ml < k and candidates:
        # rank = (delta_vl, -delta_ml, label): minimal variable loss
        # first, then maximal monomial loss (Example 15), then label for
        # determinism ("ties are broken arbitrarily" in the paper).
        best = None
        for label in sorted(candidates):
            children = trees[label].children(label)
            child_ids = [intern(child) for child in children]
            present = sum(1 for vid in child_ids if state.present_id(vid))
            delta_vl = max(0, present - 1)
            if best is not None and delta_vl > best[0]:
                continue
            if ml_tie_break:
                delta_ml = state.simulate_merge(child_ids, intern(label))
            else:
                delta_ml = 0
            rank = (delta_vl, -delta_ml, label)
            if best is None or rank < best:
                best = rank
        delta_vl, _, chosen = best
        tree = trees[chosen]
        children = tree.children(chosen)
        loss, _ = state.apply_merge(
            [intern(child) for child in children], intern(chosen)
        )
        candidates.discard(chosen)
        selected.difference_update(children)
        selected.add(chosen)
        cumulative_ml += loss
        cumulative_vl += delta_vl
        trace.append(
            GreedyStep(chosen, loss, delta_vl, cumulative_ml, cumulative_vl)
        )
        parent = tree.parent(chosen)
        if parent is not None and all(
            child in selected for child in tree.children(parent)
        ):
            candidates.add(parent)

    return _finish(polynomials, forest, state, selected, trace)



# ---------------------------------------------------------------------------
# Columnar backend: the same algorithm over flat factor arrays.
# ---------------------------------------------------------------------------


class _GroupCounts:
    """Sorted ``group id -> alive-row count`` for one active candidate.

    Group ids are drawn from per-tree monotone counters, so arrivals
    (always fresh groups) append in sorted order and departures are a
    single ``searchsorted`` — no re-sorting, ever.
    """

    __slots__ = ("groups", "counts", "size")

    def __init__(self, groups, counts):
        self.groups = groups
        self.counts = counts
        self.size = len(groups)

    def subtract(self, groups, amounts):
        """Decrement the given (unique, present) groups; return priors."""
        import numpy

        positions = numpy.searchsorted(self.groups[: self.size], groups)
        before = self.counts[positions].copy()
        self.counts[positions] = before - amounts
        return before

    def append(self, groups, counts):
        import numpy

        need = self.size + len(groups)
        if need > len(self.groups):
            capacity = max(need, 2 * len(self.groups), 16)
            for name in ("groups", "counts"):
                grown = numpy.empty(capacity, dtype=numpy.int64)
                grown[: self.size] = getattr(self, name)[: self.size]
                setattr(self, name, grown)
        self.groups[self.size:need] = groups
        self.counts[self.size:need] = counts
        self.size = need


def _columnar_greedy(polynomials, forest, bound, *, clean, ml_tie_break):
    """Algorithm 2 over the columnar working state (identical outputs).

    State: per-tree current-variable/exponent columns over the monomial
    rows, a static free-factor signature per row, an ``alive`` mask, and
    per-tree *residue groups*: rows whose contents are identical except
    for their variable of that tree share a group id. Two rows collide
    under a candidate exactly when they share a residue group (same
    polynomial, same exponent, same rest-of-monomial) and their members
    both belong to the candidate — so a candidate's exact ΔML is
    ``n − #groups`` over its rows, computed with one sort when the
    candidate activates and maintained per merge with a handful of
    array ops:

    * a merge rewrites only the rows holding the merged children
      (found via the inverted variable→row index); collisions are one
      exact row-grouping of the rewritten contents;
    * the merge does not change those rows' residues *in its own tree*
      (only the tree variable moved), so their groups there persist;
      in every *other* tree the rewritten rows leave their groups and
      form fresh ones — fresh because their contents now hold the new
      meta-variable, which no other row can contain;
    * each active candidate keeps a sorted ``group → count`` table of
      its rows; batch departures/arrivals against those tables yield
      the exact ΔML deltas for precisely the candidates watching the
      touched rows — the columnar counterpart of the object path's
      per-rewrite collision counters.
    """
    import numpy

    from repro.core.columnar import (
        ColumnarUnsupportedError,
        gather_ranges,
        invert_index,
        run_starts,
        unique_row_ids,
    )

    polynomials, forest, selected, trees, initial = _plan(
        polynomials, forest, bound, clean
    )
    cm = polynomials.columnar()
    num_trees = len(forest.trees)
    intern = VARIABLES.intern
    for tree in forest.trees:
        for label in tree.labels:
            intern(label)
    num_vars = len(VARIABLES)

    tree_of = numpy.full(num_vars, -1, dtype=numpy.intp)
    parent_vid = numpy.full(num_vars, -1, dtype=numpy.intp)
    for index, tree in enumerate(forest.trees):
        for label, node in tree.nodes.items():
            vid = intern(label)
            tree_of[vid] = index
            if node.parent is not None:
                parent_vid[vid] = intern(node.parent.label)

    num_rows = cm.num_monomials
    frows = cm.factor_rows()
    in_tree = tree_of[cm.vids]
    tree_sel = numpy.flatnonzero(in_tree >= 0)
    if len(tree_sel) and num_trees:
        membership = frows[tree_sel] * num_trees + in_tree[tree_sel]
        if len(numpy.unique(membership)) != len(membership):
            raise ColumnarUnsupportedError(
                "columnar greedy requires forest compatibility: a monomial "
                "holds more than one node of one tree"
            )

    # Per-tree current variable/exponent of every row (-1: no variable
    # of that tree) — a merge is a pure column relabel.
    var_t = numpy.full((num_trees, num_rows), -1, dtype=numpy.intp)
    exp_t = numpy.zeros((num_trees, num_rows), dtype=numpy.int64)
    var_t[in_tree[tree_sel], frows[tree_sel]] = cm.vids[tree_sel]
    exp_t[in_tree[tree_sel], frows[tree_sel]] = cm.exps[tree_sel]

    # Static free factors (never rewritten): a CSR per row plus one
    # interned signature (poly included) used by every residue key.
    free_sel = numpy.flatnonzero(in_tree < 0)
    free_counts = numpy.bincount(frows[free_sel], minlength=num_rows)
    free_starts = numpy.zeros(num_rows + 1, dtype=numpy.intp)
    numpy.cumsum(free_counts, out=free_starts[1:])
    free_vids = cm.vids[free_sel]
    width = int(free_counts.max()) if num_rows else 0
    free_matrix = numpy.empty((num_rows, 1 + 2 * width), dtype=numpy.int64)
    free_matrix[:, 0] = cm.row_poly
    if width:
        free_matrix[:, 1::2] = -2
        free_matrix[:, 2::2] = 0
        slot = (
            numpy.arange(len(free_sel), dtype=numpy.intp)
            - numpy.repeat(free_starts[:-1], free_counts)
        )
        free_matrix[frows[free_sel], 1 + 2 * slot] = free_vids
        free_matrix[frows[free_sel], 2 + 2 * slot] = cm.exps[free_sel]
    free_sig, _ = unique_row_ids(free_matrix)

    alive = numpy.ones(num_rows, dtype=bool)
    var_alive = numpy.bincount(cm.vids, minlength=num_vars)

    # Inverted variable→rows index for the tree alphabet (the rows a
    # merge rewrites, built with the shared CSR inversion); merged
    # meta-variables get their survivor lists.
    var_rows = {}
    if len(tree_sel):
        starts, order = invert_index(cm.vids[tree_sel], num_vars)
        rows_by_var = frows[tree_sel]
        for vid in numpy.unique(cm.vids[tree_sel]).tolist():
            var_rows[int(vid)] = rows_by_var[order[starts[vid]:starts[vid + 1]]]

    def residue_matrix(tree_index, rows):
        """``[free signature, exp, other trees' (var, exp)]`` rows."""
        matrix = numpy.empty((len(rows), 2 * num_trees), dtype=numpy.int64)
        matrix[:, 0] = free_sig[rows]
        matrix[:, 1] = exp_t[tree_index, rows]
        column = 2
        for other in range(num_trees):
            if other == tree_index:
                continue
            matrix[:, column] = var_t[other, rows]
            matrix[:, column + 1] = exp_t[other, rows]
            column += 2
        return matrix

    # Initial residue groups per tree. Group ids are never recycled:
    # regrouped rows draw fresh ids from the per-tree counter, so every
    # candidate table appends in sorted order.
    group_t = numpy.full((num_trees, num_rows), -1, dtype=numpy.intp)
    next_group = [0] * num_trees
    for index in range(num_trees):
        rows = numpy.flatnonzero(var_t[index] >= 0)
        if not len(rows):
            continue
        ids, count = unique_row_ids(residue_matrix(index, rows))
        group_t[index, rows] = ids
        next_group[index] = count

    # Candidate bookkeeping: slots are append-only; a chosen candidate
    # clears its parent-label entry, exactly like the object watchers.
    slot_label = []
    slot_children = []
    slot_dvl = []
    slot_tree = []
    slot_groups = []
    slot_ml = []
    cand_of_parent = numpy.full(num_vars, -1, dtype=numpy.intp)
    candidates = {}  # label -> slot
    ranks = {}
    heap = []

    def alive_rows_of(children_ids):
        parts = [var_rows[vid] for vid in children_ids if vid in var_rows]
        if not parts:
            return numpy.zeros(0, dtype=numpy.intp)
        rows = numpy.concatenate(parts)
        return rows[alive[rows]]

    def add_candidate(label):
        pid = intern(label)
        tree_index = int(tree_of[pid])
        ids = tuple(intern(child) for child in trees[label].children(label))
        present = sum(1 for vid in ids if var_alive[vid] > 0)
        delta_vl = max(0, present - 1)
        ml = 0
        table = None
        if ml_tie_break:
            rows = alive_rows_of(ids)
            groups = numpy.sort(group_t[tree_index, rows].astype(numpy.int64))
            starts = run_starts(groups)
            counts = numpy.diff(
                numpy.append(starts, len(groups))
            ).astype(numpy.int64)
            table = _GroupCounts(groups[starts].copy(), counts)
            ml = len(groups) - len(starts)
        slot = len(slot_label)
        slot_label.append(label)
        slot_children.append(ids)
        slot_dvl.append(delta_vl)
        slot_tree.append(tree_index)
        slot_groups.append(table)
        slot_ml.append(ml)
        cand_of_parent[pid] = slot
        candidates[label] = slot
        rank = (delta_vl, -ml, label)
        ranks[label] = rank
        heapq.heappush(heap, rank)

    def per_watcher_batches(tree_index, rows):
        """``(slot, groups, counts)`` per active watcher among ``rows``.

        Groups rows of one tree by the candidate watching their
        variable (parent active), aggregating duplicate groups — the
        batched form of the object path's per-entry counter bumps.
        """
        held = var_t[tree_index, rows]
        mask = held >= 0
        sub = rows[mask]
        if not len(sub):
            return
        # Roots have no parent (parent_vid -1) and therefore no
        # watcher — mask them before indexing the slot table.
        parents = parent_vid[held[mask]]
        watched = parents >= 0
        sub = sub[watched]
        if not len(sub):
            return
        slots = cand_of_parent[parents[watched]]
        active = slots >= 0
        sub = sub[active]
        if not len(sub):
            return
        slots = slots[active]
        groups = group_t[tree_index, sub].astype(numpy.int64)
        bound_ = next_group[tree_index] + 1
        keys = slots.astype(numpy.int64) * bound_ + groups
        unique_keys, counts = numpy.unique(keys, return_counts=True)
        key_slots = unique_keys // bound_
        bounds = run_starts(key_slots).tolist() + [len(unique_keys)]
        for start, stop in zip(bounds, bounds[1:], strict=False):
            yield (
                int(key_slots[start]),
                unique_keys[start:stop] % bound_,
                counts[start:stop].astype(numpy.int64),
            )

    def apply_merge(slot, touched):
        label = slot_label[slot]
        tree_index = slot_tree[slot]
        ids = slot_children[slot]
        pid = intern(label)
        rows = alive_rows_of(ids)
        if not len(rows):
            for vid in ids:
                var_rows.pop(vid, None)
                var_alive[vid] = 0
            var_rows[pid] = rows
            var_alive[pid] = 0
            return 0

        # Departures: every touched row leaves its residue group in
        # every *other* tree (its residue there is about to change; in
        # the merged tree only the variable moves, the residue — and
        # with it the group — stays).
        if ml_tie_break:
            for index in range(num_trees):
                if index == tree_index:
                    continue
                for watcher, groups, removed in per_watcher_batches(
                    index, rows
                ):
                    before = slot_groups[watcher].subtract(groups, removed)
                    delta = int((removed - (before == removed)).sum())
                    if delta:
                        slot_ml[watcher] -= delta
                    touched.add(watcher)

        # Rewrite + collisions: identical full contents merge (only
        # rewritten rows can collide — the fresh meta-variable cannot
        # occur in untouched rows).
        var_t[tree_index, rows] = pid
        content = numpy.empty((len(rows), 1 + 2 * num_trees), dtype=numpy.int64)
        content[:, 0] = free_sig[rows]
        for index in range(num_trees):
            content[:, 1 + 2 * index] = var_t[index, rows]
            content[:, 2 + 2 * index] = exp_t[index, rows]
        classes, distinct = unique_row_ids(content)
        first = numpy.full(distinct, len(rows), dtype=numpy.intp)
        numpy.minimum.at(
            first, classes, numpy.arange(len(rows), dtype=numpy.intp)
        )
        survivor_mask = numpy.zeros(len(rows), dtype=bool)
        survivor_mask[first] = True
        survivors = rows[survivor_mask]
        dead = rows[~survivor_mask]
        loss = len(rows) - distinct

        if len(dead):
            alive[dead] = False
            for index in range(num_trees):
                if index == tree_index:
                    continue
                held = var_t[index, dead]
                held = held[held >= 0]
                if len(held):
                    numpy.subtract.at(var_alive, held, 1)
            flat = gather_ranges(free_starts[dead], free_counts[dead])
            if len(flat):
                numpy.subtract.at(var_alive, free_vids[flat], 1)

        # Arrivals: in every other tree the survivors' residues now
        # hold the fresh meta-variable, so they form fresh groups that
        # cannot coincide with any existing residue.
        for index in range(num_trees):
            if index == tree_index:
                continue
            held = var_t[index, survivors]
            sub = survivors[held >= 0]
            if not len(sub):
                continue
            ids_local, count = unique_row_ids(residue_matrix(index, sub))
            group_t[index, sub] = ids_local + next_group[index]
            next_group[index] += count
            if ml_tie_break:
                for watcher, groups, counts in per_watcher_batches(index, sub):
                    slot_groups[watcher].append(groups, counts)
                    delta = int((counts - 1).sum())
                    if delta:
                        slot_ml[watcher] += delta
                    touched.add(watcher)

        for vid in ids:
            var_rows.pop(vid, None)
            var_alive[vid] = 0
        var_rows[pid] = survivors
        var_alive[pid] = len(survivors)
        return loss

    k = polynomials.num_monomials - bound
    trace = []
    for label in sorted(initial):
        add_candidate(label)

    cumulative_ml = 0
    cumulative_vl = 0
    while cumulative_ml < k and candidates:
        while True:
            rank = heapq.heappop(heap)
            label = rank[2]
            if ranks.get(label) == rank and label in candidates:
                break
        delta_vl = rank[0]
        slot = candidates.pop(label)
        ranks.pop(label, None)
        cand_of_parent[intern(label)] = -1
        slot_groups[slot] = None
        touched = set()
        loss = apply_merge(slot, touched)

        children = trees[label].children(label)
        selected.difference_update(children)
        selected.add(label)
        cumulative_ml += loss
        cumulative_vl += delta_vl
        trace.append(
            GreedyStep(label, loss, delta_vl, cumulative_ml, cumulative_vl)
        )

        for touched_slot in sorted(touched):
            touched_label = slot_label[touched_slot]
            if touched_label not in candidates:
                continue
            new_rank = (
                slot_dvl[touched_slot],
                -slot_ml[touched_slot],
                touched_label,
            )
            if new_rank != ranks[touched_label]:
                ranks[touched_label] = new_rank
                heapq.heappush(heap, new_rank)

        tree = trees[label]
        parent = tree.parent(label)
        if parent is not None and all(
            child in selected for child in tree.children(parent)
        ):
            add_candidate(parent)

    size = int(alive.sum())
    granularity = int(numpy.count_nonzero(var_alive > 0))
    vvs = ValidVariableSet(forest, frozenset(selected), _validated=True)
    return AbstractionResult(
        vvs=vvs,
        monomial_loss=polynomials.num_monomials - size,
        variable_loss=polynomials.num_variables - granularity,
        abstracted_size=size,
        abstracted_granularity=granularity,
        trace=trace,
    )
