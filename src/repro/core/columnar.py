"""Columnar (CSR) view of a polynomial multiset — the compression core.

The evaluation side of the system went columnar in PR 1
(:class:`repro.core.batch.CompiledPolynomialSet` compiles the multiset
into flat NumPy arrays once and answers whole scenario suites with a
handful of array ops). The *compression* side — ``abstract_counts``,
``P↓S`` materialization, :class:`~repro.core.abstraction.LossIndex`,
the greedy working state — still walked interned tuples monomial by
monomial. This module is the matching columnar substrate for that
side:

* :class:`ColumnarMultiset` — the monomial multiset as flat factor
  arrays: ``vids``/``exps`` hold every ``(variable id, exponent)``
  factor, ``row_starts`` delimits monomial rows, ``poly_starts``
  delimits polynomial runs. Rows are stored in each polynomial's
  *canonical sorted monomial order* — the same order
  ``CompiledPolynomialSet`` compiles, so the two representations share
  one extraction pass (``PolynomialSet.columnar()`` caches the arrays
  and the compiled evaluator is built *from* them).
* vectorized substitution: :meth:`ColumnarMultiset.substituted_counts`
  computes ``(|P↓S|_M, |P↓S|_V)`` and :meth:`ColumnarMultiset.substitute`
  materializes ``P↓S`` via an id-remap gather, a per-row factor
  sort/merge, and an ``np.unique``-style row grouping — no per-monomial
  tuple rebuilds.
* the shared CSR helpers the columnar algorithms are built on:
  :func:`unique_row_ids` (exact row grouping, the workhorse behind
  collision detection and loss indexing) and :func:`invert_index` /
  :func:`gather_ranges` (the inverted value→row CSR idiom of
  ``repro.core.batch._DeltaIndex``, factored out so the compression
  side reuses the same machinery).

Backends
--------

Every compression entry point (``abstract_counts``, ``abstract``,
``LossIndex``, ``greedy_vvs``, ``optimal_vvs``, ``brute_force_vvs``,
``ProvenanceSession.compress``, the CLI) takes a
``backend="object" | "columnar" | "auto"`` knob. The object path is the
reference implementation (exactly the code that existed before this
module); the columnar path is count-identical — same ``ML``/``VL``,
same selected VVS under the same deterministic tie-breaks — and
property tests pin the two against each other. ``"auto"`` picks
columnar for multisets of at least :data:`COLUMNAR_MIN_MONOMIALS`
monomials (below that the NumPy constant factors outweigh the win) and
falls back to object wherever a structural precondition fails.

The one documented divergence: materializing ``P↓S`` with the columnar
backend sums merged *float* coefficients in canonical monomial order
rather than dict-insertion order, so float coefficients can differ in
the last bits (exact coefficient types — int, ``Fraction`` — are
identical).
"""

from __future__ import annotations

import numpy

from repro.core.interning import VARIABLES
from repro.errors import CompressionError

__all__ = [
    "BACKENDS",
    "COLUMNAR_MIN_MONOMIALS",
    "ColumnarMultiset",
    "ColumnarUnsupportedError",
    "resolve_backend",
    "unique_row_ids",
    "run_starts",
    "invert_index",
    "gather_ranges",
]


class ColumnarUnsupportedError(CompressionError, ValueError):
    """A structural precondition of a columnar algorithm failed.

    The columnar greedy requires forest compatibility (at most one
    node of each tree per monomial, §2.2) to lay tree variables out in
    fixed per-tree columns. ``backend="auto"`` catches this and falls
    back to the object path; an explicit ``backend="columnar"``
    propagates it.
    """

#: The valid ``backend=`` names accepted across the compression stack.
BACKENDS = ("object", "columnar", "auto")

#: ``backend="auto"`` picks the columnar path for multisets with at
#: least this many monomials; smaller inputs stay on the object path
#: (identical results, and the flat-array constant factors only pay
#: off at scale).
COLUMNAR_MIN_MONOMIALS = 512

#: Padding marker for variable-id slots in fixed-width row matrices.
#: Real variable ids are >= 0 and the loss-index sentinel is -1, so -2
#: can never collide with a real factor; padded exponent slots hold 0
#: (real exponents are >= 1).
_PAD_VID = -2


def resolve_backend(backend, num_monomials):
    """The concrete backend (``"object"``/``"columnar"``) for a request.

    Explicit names validate and pass through; ``"auto"`` applies the
    :data:`COLUMNAR_MIN_MONOMIALS` size policy. Results are identical
    either way — only the work schedule differs.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend != "auto":
        return backend
    if num_monomials >= COLUMNAR_MIN_MONOMIALS:
        return "columnar"
    return "object"


def unique_row_ids(matrix):
    """Group identical rows of a 2-D integer matrix, exactly.

    :returns: ``(ids, count)`` where ``ids[i]`` is the dense group id of
        row ``i`` (ids are assigned in lexicographic row order, so the
        grouping is deterministic) and ``count`` is the number of
        distinct rows. Exact — built on a lexicographic sort of the
        actual row contents, never on hashes.
    """
    rows = matrix.shape[0]
    if rows == 0:
        return numpy.zeros(0, dtype=numpy.intp), 0
    if matrix.shape[1] == 0:
        return numpy.zeros(rows, dtype=numpy.intp), 1
    order = numpy.lexsort(matrix.T[::-1])
    sorted_rows = matrix[order]
    boundary = numpy.empty(rows, dtype=bool)
    boundary[0] = True
    numpy.any(sorted_rows[1:] != sorted_rows[:-1], axis=1, out=boundary[1:])
    sorted_ids = numpy.cumsum(boundary) - 1
    ids = numpy.empty(rows, dtype=numpy.intp)
    ids[order] = sorted_ids
    return ids, int(sorted_ids[-1]) + 1


def run_starts(values):
    """Start indices of the equal-value runs of a grouped 1-D array.

    ``values`` must already be sorted (or otherwise grouped); the
    result always begins with 0 for non-empty input. The shared form
    of the boundary-scan idiom the columnar algorithms segment their
    sorted keys with.
    """
    if not len(values):
        return numpy.zeros(0, dtype=numpy.intp)
    head = numpy.empty(len(values), dtype=bool)
    head[0] = True
    numpy.not_equal(values[1:], values[:-1], out=head[1:])
    return numpy.flatnonzero(head)


def invert_index(values, minlength, secondary=None):
    """CSR inversion ``value -> positions`` (the ``_DeltaIndex`` idiom).

    ``values`` is a non-negative int array; returns ``(starts, order)``
    with ``order[starts[v]:starts[v + 1]]`` listing the indices ``i``
    with ``values[i] == v`` — the column→monomial inversion
    :class:`repro.core.batch._DeltaIndex` builds for the delta
    evaluation engine, shared here so the compression side indexes
    variables with the same machinery. Within one value the positions
    keep their original order; pass ``secondary`` to sort them by that
    key instead (the delta index sorts by monomial row, so
    single-column plans need no extra sort).
    """
    if secondary is None:
        order = numpy.argsort(values, kind="stable")
    else:
        order = numpy.lexsort((secondary, values))
    counts = numpy.bincount(values, minlength=minlength)
    starts = numpy.zeros(minlength + 1, dtype=numpy.intp)
    numpy.cumsum(counts, out=starts[1:])
    return starts, order.astype(numpy.intp, copy=False)


def gather_ranges(starts, counts):
    """Concatenate the index ranges ``[starts[i], starts[i] + counts[i])``.

    Vectorized (one ``arange`` plus per-range offsets) — the same
    packed-segment gather the delta engine uses for affected polynomial
    runs.
    """
    total = int(counts.sum())
    if total == 0:
        return numpy.zeros(0, dtype=numpy.intp)
    offsets = numpy.zeros(len(counts), dtype=numpy.intp)
    numpy.cumsum(counts[:-1], out=offsets[1:])
    return (
        numpy.arange(total, dtype=numpy.intp)
        + numpy.repeat(starts - offsets, counts)
    )


class ColumnarMultiset:
    """A polynomial multiset as flat factor arrays (CSR over monomials).

    Built once per :class:`~repro.core.polynomial.PolynomialSet` (and
    cached there — see :meth:`PolynomialSet.columnar
    <repro.core.polynomial.PolynomialSet.columnar>`); rows run in each
    polynomial's canonical sorted monomial order, the order the batch
    evaluator compiles, so both columnar consumers share this single
    extraction pass.
    """

    __slots__ = (
        "num_polynomials",
        "num_monomials",
        "vids",
        "exps",
        "row_starts",
        "row_poly",
        "poly_starts",
        "coeffs",
        "_factor_rows",
    )

    def __init__(self, polynomial_set):
        vids = []
        exps = []
        row_starts = [0]
        poly_starts = [0]
        coeffs = []
        for polynomial in polynomial_set:
            for coeff, monomial in polynomial:
                coeffs.append(coeff)
                for vid, exp in monomial.key:
                    vids.append(vid)
                    exps.append(exp)
                row_starts.append(len(vids))
            poly_starts.append(len(coeffs))
        self.num_polynomials = len(polynomial_set)
        self.num_monomials = len(coeffs)
        self.vids = numpy.asarray(vids, dtype=numpy.intp)
        self.exps = numpy.asarray(exps, dtype=numpy.int64)
        self.row_starts = numpy.asarray(row_starts, dtype=numpy.intp)
        self.poly_starts = numpy.asarray(poly_starts, dtype=numpy.intp)
        self.row_poly = numpy.repeat(
            numpy.arange(self.num_polynomials, dtype=numpy.intp),
            numpy.diff(self.poly_starts),
        )
        #: Exact coefficients in row order (Python objects — Fractions
        #: and ints survive untouched; only counting uses the arrays).
        self.coeffs = coeffs
        self._factor_rows = None

    @classmethod
    def from_arrays(cls, vids, exps, row_starts, poly_starts, coeffs):
        """Adopt prebuilt CSR factor arrays (the binary-envelope load path).

        The arrays follow the layout documented on the class, except
        that factors within a row need *not* be vid-sorted: a loaded
        file's column ids were re-interned in this process, and the
        interning order can differ from the writer's.
        :meth:`to_polynomial_set` re-sorts per row where order matters.
        """
        self = object.__new__(cls)
        self.vids = numpy.asarray(vids, dtype=numpy.intp)
        self.exps = numpy.asarray(exps, dtype=numpy.int64)
        self.row_starts = numpy.asarray(row_starts, dtype=numpy.intp)
        self.poly_starts = numpy.asarray(poly_starts, dtype=numpy.intp)
        self.num_polynomials = len(self.poly_starts) - 1
        self.num_monomials = len(self.row_starts) - 1
        self.row_poly = numpy.repeat(
            numpy.arange(self.num_polynomials, dtype=numpy.intp),
            numpy.diff(self.poly_starts),
        )
        self.coeffs = list(coeffs)
        self._factor_rows = None
        return self

    def extend(self, polynomials):
        """Append the rows of ``polynomials`` in place (incremental path).

        The exact extraction loop of ``__init__`` run over the new
        polynomials with the existing arrays as the offset base, so the
        extended multiset is array-identical to a from-scratch build of
        the concatenated set — the invariant the incremental artifact
        pipeline (``ProvenanceSession.extend``) is pinned on. Callers
        must append the same polynomials to the owning
        :class:`~repro.core.polynomial.PolynomialSet` (done by
        :meth:`PolynomialSet.extend
        <repro.core.polynomial.PolynomialSet.extend>`).
        """
        vids = []
        exps = []
        row_starts = []
        poly_starts = []
        coeffs = []
        base_factors = len(self.vids)
        base_rows = self.num_monomials
        for polynomial in polynomials:
            for coeff, monomial in polynomial:
                coeffs.append(coeff)
                for vid, exp in monomial.key:
                    vids.append(vid)
                    exps.append(exp)
                row_starts.append(base_factors + len(vids))
            poly_starts.append(base_rows + len(coeffs))
        added_polys = len(poly_starts)
        if not added_polys:
            return
        self.vids = numpy.concatenate(
            [self.vids, numpy.asarray(vids, dtype=numpy.intp)]
        )
        self.exps = numpy.concatenate(
            [self.exps, numpy.asarray(exps, dtype=numpy.int64)]
        )
        self.row_starts = numpy.concatenate(
            [self.row_starts, numpy.asarray(row_starts, dtype=numpy.intp)]
        )
        starts = numpy.empty(added_polys + 1, dtype=numpy.intp)
        starts[0] = base_rows
        starts[1:] = poly_starts
        self.row_poly = numpy.concatenate(
            [
                self.row_poly,
                numpy.repeat(
                    numpy.arange(
                        self.num_polynomials,
                        self.num_polynomials + added_polys,
                        dtype=numpy.intp,
                    ),
                    numpy.diff(starts),
                ),
            ]
        )
        self.poly_starts = numpy.concatenate(
            [self.poly_starts, starts[1:]]
        )
        self.coeffs.extend(coeffs)
        self.num_polynomials += added_polys
        self.num_monomials += len(coeffs)
        self._factor_rows = None

    def to_polynomial_set(self):
        """Materialize the multiset back into a ``PolynomialSet``.

        The inverse of ``__init__``: each row becomes a Monomial (keys
        are vid-sorted here, one vectorized lexsort for the whole set,
        so rows from :meth:`from_arrays` with re-interned ids come out
        canonical), duplicate rows within a polynomial merge by summing
        coefficients, and zero sums are dropped — exactly the
        :class:`~repro.core.polynomial.Polynomial` constructor rules.
        """
        from repro.core.polynomial import Monomial, Polynomial, PolynomialSet

        # Stable sort by (row, vid): rows keep their positions (the
        # cumulative row lengths match row_starts), factors inside each
        # row come out id-sorted — the canonical Monomial key order.
        order = numpy.lexsort((self.vids, self.factor_rows()))
        vid_list = self.vids[order].tolist()
        exp_list = self.exps[order].tolist()
        starts = self.row_starts.tolist()
        poly_starts = self.poly_starts.tolist()
        cache = {}
        polynomials = []
        for p in range(self.num_polynomials):
            terms = {}
            for row in range(poly_starts[p], poly_starts[p + 1]):
                lo, hi = starts[row], starts[row + 1]
                key = tuple(zip(vid_list[lo:hi], exp_list[lo:hi], strict=True))
                monomial = cache.get(key)
                if monomial is None:
                    monomial = Monomial._from_key(key)
                    cache[key] = monomial
                new = terms.get(monomial, 0) + self.coeffs[row]
                if new == 0:
                    terms.pop(monomial, None)
                else:
                    terms[monomial] = new
            polynomials.append(Polynomial._raw(terms))
        return PolynomialSet(polynomials)

    # ------------------------------------------------------------ derived

    @property
    def row_lengths(self):
        """Factors per monomial row."""
        return numpy.diff(self.row_starts)

    def factor_rows(self):
        """Row index of every factor (cached)."""
        rows = self._factor_rows
        if rows is None:
            rows = numpy.repeat(
                numpy.arange(self.num_monomials, dtype=numpy.intp),
                self.row_lengths,
            )
            self._factor_rows = rows
        return rows

    def max_vid(self):
        """The largest variable id present (-1 for a variable-free set)."""
        return int(self.vids.max()) if self.vids.size else -1

    def factor_positions(self):
        """Position of every factor within its row (0-based)."""
        return (
            numpy.arange(len(self.vids), dtype=numpy.intp)
            - numpy.repeat(self.row_starts[:-1], self.row_lengths)
        )

    # ------------------------------------------------------- substitution

    def _remap(self, id_mapping):
        """The identity-extended remap array for an ``{id: id}`` mapping."""
        top = self.max_vid()
        for source, target in id_mapping.items():
            if source > top:
                top = source
            if target > top:
                top = target
        remap = numpy.arange(top + 1, dtype=numpy.int64)
        if id_mapping:
            sources = numpy.fromiter(
                id_mapping.keys(), dtype=numpy.int64, count=len(id_mapping)
            )
            targets = numpy.fromiter(
                id_mapping.values(), dtype=numpy.int64, count=len(id_mapping)
            )
            remap[sources] = targets
        return remap

    def _merged_factors(self, id_mapping):
        """Factors after the remap, merged and re-sorted per row.

        Returns ``(m_rows, m_vids, m_exps, new_starts)``: the surviving
        factor list of every row with equal targets merged (exponents
        added) and factors sorted by target id — the columnar form of
        ``Monomial.substitute_ids``.
        """
        remap = self._remap(id_mapping)
        new_vids = remap[self.vids]
        frows = self.factor_rows()
        order = numpy.lexsort((new_vids, frows))
        sv = new_vids[order]
        se = self.exps[order]
        sr = frows[order]
        if len(sv):
            head = numpy.empty(len(sv), dtype=bool)
            head[0] = True
            numpy.not_equal(sr[1:], sr[:-1], out=head[1:])
            numpy.logical_or(head[1:], sv[1:] != sv[:-1], out=head[1:])
            seg_starts = numpy.flatnonzero(head)
            m_rows = sr[seg_starts]
            m_vids = sv[seg_starts]
            m_exps = numpy.add.reduceat(se, seg_starts)
        else:
            m_rows = numpy.zeros(0, dtype=numpy.intp)
            m_vids = numpy.zeros(0, dtype=numpy.int64)
            m_exps = numpy.zeros(0, dtype=numpy.int64)
        new_lengths = numpy.bincount(m_rows, minlength=self.num_monomials)
        new_starts = numpy.zeros(self.num_monomials + 1, dtype=numpy.intp)
        numpy.cumsum(new_lengths, out=new_starts[1:])
        return m_rows, m_vids, m_exps, new_starts

    def _row_matrix(self, m_rows, m_vids, m_exps, new_starts):
        """Fixed-width ``[poly, (vid, exp)...]`` matrix of merged rows."""
        lengths = numpy.diff(new_starts)
        width = int(lengths.max()) if self.num_monomials else 0
        matrix = numpy.empty(
            (self.num_monomials, 1 + 2 * width), dtype=numpy.int64
        )
        matrix[:, 0] = self.row_poly
        if width:
            matrix[:, 1::2] = _PAD_VID
            matrix[:, 2::2] = 0
            slot = (
                numpy.arange(len(m_rows), dtype=numpy.intp)
                - numpy.repeat(new_starts[:-1], lengths)
            )
            matrix[m_rows, 1 + 2 * slot] = m_vids
            matrix[m_rows, 2 + 2 * slot] = m_exps
        return matrix

    def substituted_counts(self, id_mapping):
        """``(|P↓S|_M, |P↓S|_V)`` for an interned ``{id: id}`` mapping.

        Count-identical to the object
        :func:`repro.core.abstraction.abstract_counts` path: rows are
        remapped, per-row duplicates merged, and identical rows within
        a polynomial collapsed by exact row grouping.
        """
        if self.num_monomials == 0:
            return 0, 0
        m_rows, m_vids, m_exps, new_starts = self._merged_factors(id_mapping)
        matrix = self._row_matrix(m_rows, m_vids, m_exps, new_starts)
        _, distinct = unique_row_ids(matrix)
        granularity = len(numpy.unique(m_vids))
        return distinct, granularity

    def substitute(self, id_mapping):
        """Materialize ``P↓S`` as a list of ``{Monomial: coeff}`` dicts.

        Monomial keys are count-identical to the object
        ``substitute_ids`` path and built once per distinct target key.
        Coefficients of merged monomials are summed in canonical row
        order (exact for int/``Fraction``; float sums can differ from
        the object path in the last bits); zero sums are dropped, as in
        :meth:`Polynomial.substitute_ids
        <repro.core.polynomial.Polynomial.substitute_ids>`.
        """
        from repro.core.polynomial import Monomial

        if self.num_monomials == 0:
            return [{} for _ in range(self.num_polynomials)]
        m_rows, m_vids, m_exps, new_starts = self._merged_factors(id_mapping)
        matrix = self._row_matrix(m_rows, m_vids, m_exps, new_starts)
        ids, count = unique_row_ids(matrix)
        # One representative row and one coefficient sum per group.
        representative = numpy.full(count, self.num_monomials, dtype=numpy.intp)
        numpy.minimum.at(
            representative, ids, numpy.arange(self.num_monomials, dtype=numpy.intp)
        )
        sums = [0] * count
        for group, coeff in zip(ids.tolist(), self.coeffs, strict=True):
            sums[group] += coeff
        starts = new_starts.tolist()
        vid_list = m_vids.tolist()
        exp_list = m_exps.tolist()
        group_poly = self.row_poly[representative]
        terms = [{} for _ in range(self.num_polynomials)]
        for group, row in enumerate(representative.tolist()):
            coeff = sums[group]
            if coeff == 0:
                continue
            lo, hi = starts[row], starts[row + 1]
            key = tuple(zip(vid_list[lo:hi], exp_list[lo:hi], strict=True))
            terms[group_poly[group]][Monomial._from_key(key)] = coeff
        return terms
