"""Tests for the SQL front-end."""

import pytest

from repro.engine import Relation
from repro.engine.sql import SqlError, execute, parse_sql
from repro.workloads.telephony import figure1_database, revenue_by_zip


@pytest.fixture
def relations():
    cust, calls, plans = figure1_database()
    return {"Cust": cust, "Calls": calls, "Plans": plans}


RUNNING_EXAMPLE = (
    "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
    "FROM Calls, Cust, Plans "
    "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
    "AND Calls.Mo = Plans.Mo "
    "GROUP BY Cust.Zip"
)


class TestParsing:
    def test_parse_running_example(self):
        query = parse_sql(RUNNING_EXAMPLE)
        assert query.tables == ["Calls", "Cust", "Plans"]
        assert query.has_aggregate
        assert len(query.predicates) == 3
        assert len(query.group_by) == 1

    def test_keywords_case_insensitive(self):
        query = parse_sql("select A from T group by A")
        assert query.tables == ["T"]

    def test_rejects_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t WHERE a = 1 EXTRA")

    def test_rejects_missing_from(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a")

    def test_rejects_bad_operator(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t WHERE a ~ 1")

    def test_expression_precedence(self):
        query = parse_sql("SELECT SUM(a + b * c) FROM t")
        kind, expr = query.items[0]
        assert kind == "sum"
        assert expr[0] == "+"  # * binds tighter

    def test_parenthesized_expression(self):
        query = parse_sql("SELECT SUM((a + b) * c) FROM t")
        _, expr = query.items[0]
        assert expr[0] == "*"

    def test_unary_minus(self):
        query = parse_sql("SELECT SUM(-a) FROM t")
        _, expr = query.items[0]
        assert expr[0] == "-"


class TestExecution:
    def test_running_example_matches_dsl(self, relations):
        via_sql = execute(RUNNING_EXAMPLE, relations)
        cust, calls, plans = (
            relations["Cust"], relations["Calls"], relations["Plans"]
        )
        via_dsl = revenue_by_zip(cust, calls, plans, plan_variable=lambda p: p)
        for key in via_dsl.groups:
            assert via_sql.value(key) == pytest.approx(via_dsl.value(key))

    def test_running_example_with_params(self, relations):
        result = execute(
            RUNNING_EXAMPLE,
            relations,
            params=lambda row: [str(row["Cust.Plan"]), f"m{row['Calls.Mo']}"],
        )
        polynomial = result.polynomial((10001,))
        assert polynomial.num_monomials == 8
        assert "m1" in polynomial.variables

    def test_projection_query(self, relations):
        result = execute(
            "SELECT Zip FROM Cust WHERE Plan = 'A'", relations
        )
        assert sorted(result.rows) == [(10001,)]

    def test_filter_comparisons(self, relations):
        result = execute(
            "SELECT CID FROM Calls WHERE Dur >= 1000", relations
        )
        assert all(row == (6,) for row in result.rows)

    def test_join_two_tables(self, relations):
        result = execute(
            "SELECT Cust.Zip, Calls.Dur FROM Cust, Calls "
            "WHERE Cust.ID = Calls.CID AND Calls.Mo = 1",
            relations,
        )
        assert len(result) > 0

    def test_aggregate_without_group_by(self, relations):
        result = execute(
            "SELECT SUM(Dur) FROM Calls WHERE Mo = 1", relations
        )
        expected = sum(
            row[2] for row, _ in relations["Calls"] if row[1] == 1
        )
        assert result.value(()) == expected

    def test_group_key_after_join_alias(self, relations):
        """Grouping on a column the join dropped resolves via its alias."""
        result = execute(
            "SELECT Calls.CID, SUM(Calls.Dur) FROM Calls, Cust "
            "WHERE Cust.ID = Calls.CID GROUP BY Cust.ID",
            relations,
        )
        assert len(result) == 7

    def test_unknown_table(self, relations):
        with pytest.raises(SqlError, match="unknown tables"):
            execute("SELECT a FROM Nope", relations)

    def test_unknown_column(self, relations):
        with pytest.raises(SqlError, match="unknown column"):
            execute("SELECT Missing FROM Cust", relations)

    def test_ambiguous_column(self):
        left = Relation.from_rows(["k", "v"], [(1, 2)])
        right = Relation.from_rows(["k", "v"], [(1, 3)])
        with pytest.raises(SqlError, match="ambiguous"):
            execute(
                "SELECT v FROM L, R WHERE L.k = R.k",
                {"L": left, "R": right},
            )

    def test_cartesian_product_rejected(self, relations):
        with pytest.raises(SqlError, match="cartesian|join condition"):
            execute("SELECT Cust.Zip FROM Cust, Calls", relations)

    def test_multiple_sums_rejected(self, relations):
        with pytest.raises(SqlError, match="one SUM"):
            execute(
                "SELECT SUM(Dur), SUM(Mo) FROM Calls GROUP BY CID",
                relations,
            )

    def test_string_literal_filter(self, relations):
        result = execute(
            "SELECT ID FROM Cust WHERE Plan = 'SB1'", relations
        )
        assert sorted(result.rows) == [(3,)]

    def test_arithmetic_in_sum(self, relations):
        result = execute(
            "SELECT SUM(Dur * 2 + 1) FROM Calls WHERE CID = 1", relations
        )
        durations = [row[2] for row, _ in relations["Calls"] if row[0] == 1]
        assert result.value(()) == sum(2 * d + 1 for d in durations)


class TestEndToEndProvenance:
    def test_sql_provenance_equals_paper_polynomial(self, relations):
        """The §1 SQL query + parameterization == Example 2's polynomial."""
        from repro.core.parser import parse
        from repro.workloads.telephony import figure1_plan_variables

        plan_vars = figure1_plan_variables()
        result = execute(
            RUNNING_EXAMPLE,
            relations,
            params=lambda row: [
                plan_vars[row["Cust.Plan"]], f"m{row['Calls.Mo']}"
            ],
        )
        expected = parse(
            "220.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "
            "75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3"
        )
        assert result.polynomial((10001,)).almost_equal(expected, 1e-9)
