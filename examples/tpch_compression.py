"""TPC-H provenance compression (the paper's §4 workloads, scaled).

Generates a TPC-H database, runs the provenance-parameterized queries
Q1/Q5/Q10, and compresses each query's provenance with the supplier
abstraction tree — comparing the optimal DP against the greedy
heuristic and the Ainy-et-al. competitor.

Run:  python examples/tpch_compression.py
"""

from repro.algorithms import greedy_vvs, optimal_vvs, summarize
from repro.core import AbstractionForest
from repro.util import Timer, format_table
from repro.workloads.tpch import generate, query_provenance, supplier_tree


#: The competitor rescans monomial pairs quadratically; above this size
#: we skip it — the paper saw the same blow-up ("did not finish ...
#: within 24 hours" on the two large workloads, §4).
COMPETITOR_SIZE_CAP = 800


def main():
    db = generate(scale_factor=0.001, seed=0)
    print(db)

    tree = supplier_tree((8,))
    rows = []
    for query in ["q1", "q5", "q10"]:
        provenance = query_provenance(db, query)
        if len(provenance) == 0:
            continue
        bound = max(1, provenance.num_monomials // 2)

        with Timer() as opt_timer:
            try:
                optimal = optimal_vvs(provenance, tree, bound)
                opt_cell = f"{optimal.abstracted_size} (VL {optimal.variable_loss})"
            except Exception as error:  # bound unreachable with this tree
                opt_cell = "infeasible"
                _ = error

        with Timer() as greedy_timer:
            greedy = greedy_vvs(
                provenance, AbstractionForest([tree.copy()]), bound
            )

        if provenance.num_monomials <= COMPETITOR_SIZE_CAP:
            with Timer() as competitor_timer:
                competitor = summarize(
                    provenance,
                    AbstractionForest([tree.copy()]),
                    bound,
                    max_iterations=2000,
                )
            competitor_cell = (
                f"{competitor.abstracted_size} ({competitor.merges} merges)"
            )
            competitor_ms = f"{competitor_timer.elapsed * 1e3:.1f}"
        else:
            competitor_cell = "skipped (quadratic blow-up)"
            competitor_ms = "-"

        rows.append([
            query,
            f"{len(provenance)}/{provenance.num_monomials}",
            bound,
            opt_cell,
            f"{opt_timer.elapsed * 1e3:.1f}",
            f"{greedy.abstracted_size} (VL {greedy.variable_loss})",
            f"{greedy_timer.elapsed * 1e3:.1f}",
            competitor_cell,
            competitor_ms,
        ])

    print()
    print(format_table(
        ["query", "polys/monos", "bound", "optimal", "ms",
         "greedy", "ms", "competitor [3]", "ms"],
        rows,
        title="TPC-H provenance compression (supplier tree, B = |P|_M / 2)",
    ))


if __name__ == "__main__":
    main()
