"""Abstraction forests and valid variable sets (§2.2–§2.3).

A *valid abstraction forest* is a set of abstraction trees with pairwise
disjoint label sets. A *valid variable set* (VVS, Definition 4) ``S``
picks, for every leaf, exactly one ancestor-or-self — i.e., a cut in
each tree. Abstracting ``P`` by ``S`` (written ``P↓S``) substitutes each
leaf variable by its chosen ancestor.
"""

from __future__ import annotations

from repro.core.tree import AbstractionTree
from repro.errors import ReproError

__all__ = ["AbstractionForest", "ValidVariableSet", "CompatibilityError"]


class CompatibilityError(ReproError, ValueError):
    """Raised when a forest is not compatible with a polynomial set."""


class AbstractionForest:
    """A set of abstraction trees with disjoint label sets.

    >>> plans = AbstractionTree.from_nested(("P", [("SB", ["b1", "b2"]), "e"]))
    >>> months = AbstractionTree.from_nested(("Y", ["m1", "m3"]))
    >>> forest = AbstractionForest([plans, months])
    >>> forest.count_cuts()
    6
    """

    __slots__ = ("trees", "_owner")

    def __init__(self, trees):
        self.trees = list(trees)
        self._owner = {}
        for index, tree in enumerate(self.trees):
            if not isinstance(tree, AbstractionTree):
                raise TypeError(f"expected AbstractionTree, got {type(tree).__name__}")
            for label in tree.labels:
                if label in self._owner:
                    raise ValueError(
                        f"label {label!r} appears in more than one tree; "
                        "abstraction forests must be disjoint"
                    )
                self._owner[label] = index

    # -------------------------------------------------------------- queries

    def __iter__(self):
        return iter(self.trees)

    def __len__(self):
        return len(self.trees)

    def __contains__(self, label):
        return label in self._owner

    @property
    def labels(self):
        """``V(T)`` — all labels across the forest."""
        return set(self._owner)

    @property
    def leaf_labels(self):
        """Union of the trees' leaf label sets."""
        out = set()
        for tree in self.trees:
            out.update(tree.leaf_labels)
        return out

    def tree_of(self, label):
        """The tree containing ``label`` (KeyError if absent)."""
        return self.trees[self._owner[label]]

    def is_descendant(self, lower, upper):
        """``lower ≤_T upper`` across the forest."""
        if lower not in self._owner or upper not in self._owner:
            return False
        if self._owner[lower] != self._owner[upper]:
            return False
        return self.tree_of(lower).is_descendant(lower, upper)

    # -------------------------------------------------------- compatibility

    def check_compatible(self, polynomials):
        """Raise :class:`CompatibilityError` unless compatible (§2.2).

        Compatibility requires: (1) every leaf label occurs as a variable
        of the polynomials, (2) no internal (meta-variable) label occurs
        in the polynomials, and (3) every monomial contains at most one
        node of each tree.
        """
        variables = polynomials.variables
        for tree in self.trees:
            missing = tree.leaf_labels - variables
            if missing:
                raise CompatibilityError(
                    f"leaves {sorted(missing)} do not occur in the polynomials; "
                    "call forest.clean(polynomials) first (paper footnote 1)"
                )
            internal = tree.labels - tree.leaf_labels
            clashing = internal & variables
            if clashing:
                raise CompatibilityError(
                    f"meta-variables {sorted(clashing)} occur in the polynomials"
                )
        for polynomial in polynomials:
            for monomial in polynomial.monomials:
                per_tree = {}
                for var in monomial.variables:
                    index = self._owner.get(var)
                    if index is None:
                        continue
                    per_tree[index] = per_tree.get(index, 0) + 1
                    if per_tree[index] > 1:
                        raise CompatibilityError(
                            f"monomial {monomial} contains more than one node of "
                            f"tree rooted at {self.trees[index].root.label!r}"
                        )

    def is_compatible(self, polynomials):
        """Boolean form of :meth:`check_compatible`."""
        try:
            self.check_compatible(polynomials)
        except CompatibilityError:
            return False
        return True

    def clean(self, polynomials):
        """Footnote 1 lifted to forests: clean each tree against ``V(P)``.

        Trees whose leaves all vanish are dropped. Returns a new forest.
        """
        variables = polynomials.variables
        cleaned = []
        for tree in self.trees:
            new_tree = tree.clean(variables)
            if new_tree is not None:
                cleaned.append(new_tree)
        return AbstractionForest(cleaned)

    # -------------------------------------------------------- cut machinery

    def count_cuts(self):
        """Number of VVSs = product of per-tree cut counts."""
        product = 1
        for tree in self.trees:
            product *= tree.count_cuts()
        return product

    def iter_cuts(self):
        """Stream every VVS of the forest (product of per-tree cuts)."""

        def product(trees):
            if not trees:
                yield frozenset()
                return
            head, tail = trees[0], trees[1:]
            for head_cut in head.iter_cuts():
                for tail_cut in product(tail):
                    yield head_cut | tail_cut

        for labels in product(self.trees):
            yield ValidVariableSet(self, labels, _validated=True)

    def leaf_vvs(self):
        """The identity cut (every leaf chosen; nothing abstracted)."""
        return ValidVariableSet(self, frozenset(self.leaf_labels), _validated=True)

    def root_vvs(self):
        """The coarsest cut (every root chosen; maximal abstraction)."""
        return ValidVariableSet(
            self, frozenset(tree.root.label for tree in self.trees), _validated=True
        )

    def vvs(self, labels):
        """Construct a validated :class:`ValidVariableSet` from labels."""
        return ValidVariableSet(self, frozenset(labels))

    def is_valid_vvs(self, labels):
        """True iff ``labels`` forms a cut in every tree (Definition 4)."""
        try:
            ValidVariableSet(self, frozenset(labels))
        except ValueError:
            return False
        return True

    def __repr__(self):
        roots = [tree.root.label for tree in self.trees]
        return f"AbstractionForest(roots={roots!r})"


class ValidVariableSet:
    """A valid variable set (Definition 4): one cut per tree.

    Provides the leaf→representative substitution ``mapping`` and the
    ``apply`` operation computing ``P↓S``.

    >>> tree = AbstractionTree.from_nested(("P", [("SB", ["b1", "b2"]), "e"]))
    >>> forest = AbstractionForest([tree])
    >>> vvs = forest.vvs({"SB", "e"})
    >>> vvs.mapping()
    {'b1': 'SB', 'b2': 'SB'}
    """

    __slots__ = ("forest", "labels", "_mapping")

    def __init__(self, forest, labels, _validated=False):
        self.forest = forest
        self.labels = frozenset(labels)
        self._mapping = None
        if not _validated:
            self._validate()

    def _validate(self):
        owner = self.forest._owner
        for label in self.labels:
            if label not in owner:
                raise ValueError(f"label {label!r} is not in the forest")
        for tree in self.forest.trees:
            chosen = self.labels & tree.labels
            # Cover: every leaf has an ancestor-or-self in the set.
            covered = set()
            for label in chosen:
                for leaf in tree.leaves_under(label):
                    if leaf in covered:
                        raise ValueError(
                            f"leaf {leaf!r} is covered twice; "
                            "a VVS must be an antichain"
                        )
                    covered.add(leaf)
            missing = tree.leaf_labels - covered
            if missing:
                raise ValueError(
                    f"leaves {sorted(missing)} of tree {tree.root.label!r} "
                    "are not covered by the VVS"
                )

    def mapping(self):
        """Leaf → chosen-ancestor substitution (identity entries omitted)."""
        if self._mapping is None:
            mapping = {}
            for label in self.labels:
                tree = self.forest.tree_of(label)
                for leaf in tree.leaves_under(label):
                    if leaf != label:
                        mapping[leaf] = label
            self._mapping = mapping
        return self._mapping

    def representative(self, variable):
        """The abstraction of ``variable`` under this VVS.

        Variables outside the forest (or chosen as themselves) map to
        themselves.
        """
        return self.mapping().get(variable, variable)

    def apply(self, polynomials):
        """``P↓S`` — abstract a polynomial (or multiset of polynomials)."""
        return polynomials.substitute(self.mapping())

    def group(self, label):
        """The leaves abstracted by ``label`` (singleton if a leaf)."""
        return self.forest.tree_of(label).leaves_under(label)

    # ------------------------------------------------------------- dunder

    def __contains__(self, label):
        return label in self.labels

    def __iter__(self):
        return iter(sorted(self.labels))

    def __len__(self):
        return len(self.labels)

    def __eq__(self, other):
        return (
            isinstance(other, ValidVariableSet)
            and self.labels == other.labels
            and self.forest is other.forest
        )

    def __hash__(self):
        return hash(self.labels)

    def __repr__(self):
        return f"VVS({sorted(self.labels)!r})"
