"""Unit tests for abstraction application, ML/VL, and the LossIndex."""

import pytest

from repro.core.abstraction import (
    LossIndex,
    abstract,
    abstract_counts,
    monomial_loss,
    variable_loss,
)
from repro.core.forest import AbstractionForest
from repro.core.parser import parse, parse_set
from repro.core.tree import AbstractionTree


@pytest.fixture
def business_polys():
    return parse_set(
        ["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3 + 6*e*m1 + 7*e*m3"]
    )


@pytest.fixture
def business_tree():
    return AbstractionTree.from_nested(("B", [("SB", ["b1", "b2"]), "e"]))


class TestAbstract:
    def test_abstract_merges_monomials(self, business_polys, business_tree):
        forest = AbstractionForest([business_tree])
        vvs = forest.vvs({"SB", "e"})
        result = abstract(business_polys, vvs)
        assert result[0] == parse("6*SB*m1 + 8*SB*m3 + 6*e*m1 + 7*e*m3")

    def test_abstract_full_root(self, business_polys, business_tree):
        forest = AbstractionForest([business_tree])
        result = abstract(business_polys, forest.root_vvs())
        assert result[0] == parse("12*B*m1 + 15*B*m3")

    def test_abstract_identity(self, business_polys, business_tree):
        forest = AbstractionForest([business_tree])
        result = abstract(business_polys, forest.leaf_vvs())
        assert result[0] == business_polys[0]

    def test_abstract_rejects_non_vvs(self, business_polys):
        with pytest.raises(TypeError):
            abstract(business_polys, {"SB"})


class TestLosses:
    def test_monomial_loss(self, business_polys, business_tree):
        forest = AbstractionForest([business_tree])
        assert monomial_loss(business_polys, forest.vvs({"SB", "e"})) == 2
        assert monomial_loss(business_polys, forest.root_vvs()) == 4
        assert monomial_loss(business_polys, forest.leaf_vvs()) == 0

    def test_variable_loss(self, business_polys, business_tree):
        forest = AbstractionForest([business_tree])
        assert variable_loss(business_polys, forest.vvs({"SB", "e"})) == 1
        assert variable_loss(business_polys, forest.root_vvs()) == 2
        assert variable_loss(business_polys, forest.leaf_vvs()) == 0

    def test_example6_losses(self, ex13_polys, figure2_tree):
        """Example 6: ML(S1)=4, ML(S5)=6, VL(S1)=2, VL(S5)=3 (on P1)."""
        from repro.core.polynomial import PolynomialSet

        p1_only = PolynomialSet([ex13_polys[0]])
        forest = AbstractionForest([figure2_tree])
        s1 = forest.vvs({"Business", "Special", "Standard"})
        s5 = forest.vvs({"Plans"})
        assert monomial_loss(p1_only, s1) == 4
        assert variable_loss(p1_only, s1) == 2
        assert monomial_loss(p1_only, s5) == 6
        assert variable_loss(p1_only, s5) == 3

    def test_abstract_counts_matches_materialized(self, ex13_polys, figure2_tree):
        forest = AbstractionForest([figure2_tree])
        for vvs in forest.iter_cuts():
            materialized = abstract(ex13_polys, vvs)
            assert abstract_counts(ex13_polys, vvs.mapping()) == (
                materialized.num_monomials,
                materialized.num_variables,
            )


class TestLossIndex:
    def test_leaf_losses_are_zero(self, business_polys, business_tree):
        index = LossIndex(business_polys, business_tree)
        for leaf in ["b1", "b2", "e"]:
            assert index.ml(leaf) == 0
            assert index.vl(leaf) == 0

    def test_internal_node_ml(self, business_polys, business_tree):
        index = LossIndex(business_polys, business_tree)
        assert index.ml("SB") == 2
        assert index.ml("B") == 4

    def test_internal_node_vl(self, business_polys, business_tree):
        index = LossIndex(business_polys, business_tree)
        assert index.vl("SB") == 1
        assert index.vl("B") == 2

    def test_max_ml_is_root(self, business_polys, business_tree):
        index = LossIndex(business_polys, business_tree)
        assert index.max_ml == 4

    def test_cut_additivity(self, ex13_polys, figure2_tree):
        """Single-tree additivity: ML/VL of a cut == sum of node losses."""
        cleaned = figure2_tree.clean(ex13_polys.variables)
        forest = AbstractionForest([cleaned])
        index = LossIndex(ex13_polys, cleaned)
        for vvs in forest.iter_cuts():
            assert index.ml_of_cut(vvs.labels) == monomial_loss(ex13_polys, vvs)
            assert index.vl_of_cut(vvs.labels) == variable_loss(ex13_polys, vvs)

    def test_example13_array_entries(self, ex13_polys, figure2_tree):
        """The per-node losses behind Example 13's arrays.

        A_SB[2] = 1: abstracting SB loses 2 monomials and 1 variable.
        A_Sp[4] = 2: abstracting Special loses 4 monomials, 2 variables.
        """
        cleaned = figure2_tree.clean(ex13_polys.variables)
        index = LossIndex(ex13_polys, cleaned)
        assert (index.ml("SB"), index.vl("SB")) == (2, 1)
        assert (index.ml("Special"), index.vl("Special")) == (4, 2)
        assert (index.ml("Business"), index.vl("Business")) == (4, 2)

    def test_exponents_block_bad_merges(self):
        """x²·g-leaf vs x·g-leaf residuals must not collide."""
        polys = parse_set(["a*x^2 + b*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        index = LossIndex(polys, tree)
        assert index.ml("g") == 0  # residuals differ by exponent of x

    def test_leaf_exponent_preserved(self):
        polys = parse_set(["a^2*x + b^2*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        index = LossIndex(polys, tree)
        assert index.ml("g") == 1  # both become g^2*x

    def test_mixed_leaf_exponents_do_not_merge(self):
        polys = parse_set(["a^2*x + b*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        index = LossIndex(polys, tree)
        assert index.ml("g") == 0

    def test_no_cross_polynomial_merging(self):
        polys = parse_set(["a*x", "b*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        index = LossIndex(polys, tree)
        assert index.ml("g") == 0

    def test_absent_leaves_counted_as_not_present(self):
        polys = parse_set(["a*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        index = LossIndex(polys, tree)
        assert index.leaves_present("g") == 1
        assert index.vl("g") == 0
        assert index.leaf_count("g") == 2
