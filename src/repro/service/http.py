"""A small, stdlib-only HTTP/1.1 layer over ``asyncio`` streams.

Just enough protocol for the what-if service — no dependency on an
ASGI server, no ``http.server`` threading model. Supported: request
lines, headers, ``Content-Length`` bodies, keep-alive (on by default
for HTTP/1.1, honoured via ``Connection:`` either way), JSON
responses. Not supported (answered with clean 4xx/5xx instead of a
hang): chunked request bodies, upgrades, pipelining beyond what the
serial read loop naturally provides.

The service's JSON framing lives here too: handlers speak
``(status, payload-dict)`` and this layer renders the envelope, so
every response — including protocol-level errors — is JSON with the
same shape.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Awaitable, Callable

    #: A request handler: request -> (status, JSON-able payload).
    Handler = Callable[["Request"], Awaitable[tuple[int, dict]]]

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "serve_connection",
]

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure with the status it maps to.

    ``headers`` carries extra response headers — the backpressure and
    circuit-breaker 503s use it for ``Retry-After``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> object:
        """The body parsed as JSON (:class:`HttpError` 400 otherwise)."""
        if not self.body:
            raise HttpError(400, "empty body where a JSON document is required")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from error


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` for malformed or oversized requests and
    lets stream-level exceptions (reset, mid-request EOF) propagate to
    the connection loop, which just drops the connection.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    if len(request_line) > MAX_HEADER_BYTES:
        raise HttpError(431, "request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, path, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if not line:
            raise HttpError(400, "connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "headers too large")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "Content-Length required")
    return Request(method, path, version, headers, body)


def render_response(
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
    headers: dict[str, str] | None = None,
) -> bytes:
    """An HTTP/1.1 response with a JSON body, as wire bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"{extra}"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handler: Handler,
) -> None:
    """The per-connection loop: parse → handle → respond, keep-alive.

    Handlers may raise :class:`HttpError`; anything else escaping them
    is the handler's bug and renders as a 500 (the connection closes —
    the stream state is no longer trusted).
    """
    try:
        while True:
            try:
                request = await read_request(reader)
            except HttpError as error:
                writer.write(render_response(
                    error.status, _error_payload(error.status, str(error)),
                    keep_alive=False, headers=error.headers,
                ))
                await writer.drain()
                return
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                asyncio.LimitOverrunError,
            ):
                return
            if request is None:
                return
            keep_alive = request.keep_alive
            extra_headers = None
            try:
                status, payload = await handler(request)
            except HttpError as error:
                status, payload = error.status, _error_payload(
                    error.status, str(error)
                )
                extra_headers = error.headers
            except asyncio.CancelledError:
                raise
            except Exception as error:
                status = 500
                payload = _error_payload(
                    500, f"unhandled {type(error).__name__}: {error}"
                )
                keep_alive = False
            writer.write(render_response(
                status, payload, keep_alive=keep_alive, headers=extra_headers
            ))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _error_payload(status: int, message: str) -> dict:
    """The uniform error envelope (see also ``app.STATUS_OF``)."""
    return {"error": {"status": status, "message": message}}
