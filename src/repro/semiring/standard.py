"""The standard semirings of the provenance literature.

Each instance witnesses one point of Green's specialization hierarchy:
``N[X]`` (our :class:`~repro.core.polynomial.Polynomial`) is universal,
and evaluating it in any semiring below recovers the corresponding
classical provenance notion:

* :data:`BOOLEAN` — set semantics / possibility;
* :data:`NATURAL` — bag semantics (multiplicities);
* :data:`TROPICAL` — min-cost derivations;
* :data:`VITERBI` — best-derivation probability;
* :data:`FUZZY` — fuzzy membership;
* :data:`LINEAGE` — which base tuples matter (a set of variables);
* :data:`WHY` — witness bases (sets of sets of variables).
"""

from __future__ import annotations

import math

from repro.semiring.base import Semiring

__all__ = [
    "BooleanSemiring",
    "NaturalSemiring",
    "RealSemiring",
    "TropicalSemiring",
    "ViterbiSemiring",
    "FuzzySemiring",
    "LineageSemiring",
    "WhySemiring",
    "BOOLEAN",
    "NATURAL",
    "REAL",
    "TROPICAL",
    "VITERBI",
    "FUZZY",
    "LINEAGE",
    "WHY",
]


class BooleanSemiring(Semiring):
    """``({False, True}, ∨, ∧)`` — set semantics."""

    name = "boolean"
    zero = False
    one = True

    def plus(self, a, b):
        return a or b

    def times(self, a, b):
        return a and b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return n > 0


class NaturalSemiring(Semiring):
    """``(N, +, ×)`` — bag semantics."""

    name = "natural"
    zero = 0
    one = 1

    def plus(self, a, b):
        return a + b

    def times(self, a, b):
        return a * b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return n


class RealSemiring(Semiring):
    """``(R≥0, +, ×)`` — expectations, scores, aggregate values."""

    name = "real"
    zero = 0.0
    one = 1.0

    def plus(self, a, b):
        return a + b

    def times(self, a, b):
        return a * b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return float(n)


class TropicalSemiring(Semiring):
    """``(R∪{∞}, min, +)`` — cheapest-derivation cost."""

    name = "tropical"
    zero = math.inf
    one = 0.0

    def plus(self, a, b):
        return min(a, b)

    def times(self, a, b):
        return a + b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return math.inf if n == 0 else 0.0


class ViterbiSemiring(Semiring):
    """``([0,1], max, ×)`` — most-likely derivation."""

    name = "viterbi"
    zero = 0.0
    one = 1.0

    def plus(self, a, b):
        return max(a, b)

    def times(self, a, b):
        return a * b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return 0.0 if n == 0 else 1.0


class FuzzySemiring(Semiring):
    """``([0,1], max, min)`` — fuzzy membership."""

    name = "fuzzy"
    zero = 0.0
    one = 1.0

    def plus(self, a, b):
        return max(a, b)

    def times(self, a, b):
        return min(a, b)

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return 0.0 if n == 0 else 1.0


class LineageSemiring(Semiring):
    """Sets of contributing variables; ``⊕ = ⊗ = ∪`` with a distinct 0.

    ``zero`` is ``None`` (no derivation at all), distinct from the empty
    set (a derivation using no base tuples).
    """

    name = "lineage"
    zero = None
    one = frozenset()

    def plus(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    def times(self, a, b):
        if a is None or b is None:
            return None
        return a | b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return None if n == 0 else frozenset()


class WhySemiring(Semiring):
    """Why-provenance: sets of witness sets.

    ``⊕`` unions the witness collections, ``⊗`` pairs them
    (``{a ∪ b | a ∈ A, b ∈ B}``). Elements are frozensets of frozensets
    of variable names.
    """

    name = "why"
    zero = frozenset()
    one = frozenset([frozenset()])

    def plus(self, a, b):
        return a | b

    def times(self, a, b):
        return frozenset(x | y for x in a for y in b)

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return self.zero if n == 0 else self.one


BOOLEAN = BooleanSemiring()
NATURAL = NaturalSemiring()
REAL = RealSemiring()
TROPICAL = TropicalSemiring()
VITERBI = ViterbiSemiring()
FUZZY = FuzzySemiring()
LINEAGE = LineageSemiring()
WHY = WhySemiring()
