"""Tests for Algorithm 2 (greedy multi-tree selection)."""

import pytest

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.core.abstraction import abstract, losses, monomial_loss, variable_loss
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree
from repro.workloads.random_polys import random_compatible_instance


class TestExample15:
    """The paper's full greedy trace, step by step."""

    def test_final_answer(self, ex13_polys, paper_forest):
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        assert result.monomial_loss == 11
        assert result.variable_loss == 5
        assert result.vvs.labels == frozenset(
            {"q1", "Business", "Special", "p1"}
        )

    def test_step_sequence(self, ex13_polys, paper_forest):
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        chosen = [step.chosen for step in result.trace]
        assert chosen == ["q1", "SB", "Business", "Special"]

    def test_cumulative_ml_trace(self, ex13_polys, paper_forest):
        """Example 15's cumulative ML: 7 → 8 → 9 → 11."""
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        assert [step.cumulative_ml for step in result.trace] == [7, 8, 9, 11]

    def test_q1_beats_sb_via_ml_tiebreak(self, ex13_polys, paper_forest):
        """Both q1 and SB cost VL 1; q1's ML 7 beats SB's ML 2."""
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        first = result.trace[0]
        assert first.chosen == "q1"
        assert first.delta_ml == 7
        assert first.delta_vl == 1

    def test_greedy_is_suboptimal_here(self, ex13_polys, paper_forest):
        """The paper notes the optimum is {q1, Sp, SB, e, p1}: ML 10, VL 4."""
        greedy = greedy_vvs(ex13_polys, paper_forest, bound=4)
        optimal = brute_force_vvs(ex13_polys, paper_forest, bound=4)
        assert optimal.vvs.labels == frozenset({"q1", "Special", "SB", "e", "p1"})
        assert optimal.monomial_loss == 10
        assert optimal.variable_loss == 4
        assert greedy.variable_loss >= optimal.variable_loss


class TestBehaviour:
    def test_loose_bound_is_identity(self, ex13_polys, paper_forest):
        result = greedy_vvs(ex13_polys, paper_forest, bound=99)
        assert result.monomial_loss == 0
        assert result.trace == []

    def test_unreachable_bound_exhausts_candidates(self, ex13_polys, paper_forest):
        """Example 8-style: greedy stops at the roots without raising."""
        result = greedy_vvs(ex13_polys, paper_forest, bound=1)
        # Maximal abstraction: every tree fully collapsed.
        assert result.abstracted_size > 1  # bound unreachable
        roots = {tree.root.label for tree in result.vvs.forest}
        assert result.vvs.labels == frozenset(roots)

    def test_single_tree_accepted(self):
        polys = parse_set(["2*a*x + 3*b*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        result = greedy_vvs(polys, tree, bound=1)
        assert result.abstracted_size == 1
        assert result.vvs.labels == frozenset({"g"})

    def test_invalid_bound_rejected(self, ex13_polys, paper_forest):
        with pytest.raises(ValueError):
            greedy_vvs(ex13_polys, paper_forest, bound=0)

    def test_result_counts_are_consistent(self, ex13_polys, paper_forest):
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        materialized = abstract(ex13_polys, result.vvs)
        assert materialized.num_monomials == result.abstracted_size
        assert materialized.num_variables == result.abstracted_granularity
        # Both measures in one counting pass (and each standalone).
        assert (result.monomial_loss, result.variable_loss) == losses(
            ex13_polys, result.vvs
        )
        assert result.monomial_loss == monomial_loss(ex13_polys, result.vvs)
        assert result.variable_loss == variable_loss(ex13_polys, result.vvs)

    def test_trace_ml_is_monotone(self, ex13_polys, paper_forest):
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        mls = [step.cumulative_ml for step in result.trace]
        assert mls == sorted(mls)

    def test_stops_as_soon_as_bound_met(self, ex13_polys, paper_forest):
        """Greedy must not keep abstracting once ML(S) >= k."""
        result = greedy_vvs(ex13_polys, paper_forest, bound=7)  # k = 7
        assert result.trace[-1].cumulative_ml >= 7
        if len(result.trace) > 1:
            assert result.trace[-2].cumulative_ml < 7


class TestRandomizedSoundness:
    @pytest.mark.parametrize("seed", range(10))
    def test_greedy_vvs_is_valid_and_adequate_when_possible(self, seed):
        polys, forest = random_compatible_instance(seed=seed)
        bound = max(1, polys.num_monomials // 2)
        result = greedy_vvs(polys, forest, bound)
        # The returned labels always form a valid cut of the cleaned forest.
        assert result.vvs.forest.is_valid_vvs(result.vvs.labels)
        # If the maximal abstraction reaches the bound, greedy must too.
        roots = result.vvs.forest.root_vvs()
        max_ml = monomial_loss(polys, roots)
        if max_ml >= polys.num_monomials - bound:
            assert result.abstracted_size <= bound

    @pytest.mark.parametrize("seed", range(10))
    def test_greedy_never_beats_brute_force(self, seed):
        polys, forest = random_compatible_instance(
            seed=seed, leaves_per_tree=4, num_polynomials=3,
            monomials_per_polynomial=8,
        )
        bound = max(1, polys.num_monomials // 2)
        greedy = greedy_vvs(polys, forest, bound)
        try:
            optimal = brute_force_vvs(polys, forest, bound, max_cuts=100_000)
        except Exception:
            pytest.skip("instance infeasible or too large")
        if greedy.abstracted_size <= bound:
            assert greedy.variable_loss >= optimal.variable_loss

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_matches_optimal_on_single_trees_often_enough(self, seed):
        """Not an optimality claim — just that greedy stays sound and
        comparable on single trees (Table 1 measures the gap)."""
        polys, forest = random_compatible_instance(seed=40 + seed, num_trees=1)
        if len(forest.trees) != 1:
            pytest.skip("tree vanished")
        bound = max(1, polys.num_monomials - 2)
        greedy = greedy_vvs(polys, forest, bound)
        optimal = optimal_vvs(polys, forest.trees[0], bound)
        assert greedy.variable_loss >= optimal.variable_loss
