"""Tests for `repro.options` (EvalOptions + the deprecation shim),
the `repro.errors` hierarchy, and the JSON/mmap load-mode reporting."""

import warnings

import pytest

import repro
import repro.errors
from repro.api.session import ProvenanceSession
from repro.options import EvalOptions, resolve_options
from repro.scenarios.analysis import evaluate_scenarios, sensitivity, top_k

POLYNOMIALS = [
    "2*b1*m1 + 3*b2*m1 + b3*m2",
    "b1*m2 + 4*b2*m2 + 2*b3*m1",
]
FOREST = [("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])]
SUITE = [
    {"b1": 0.5, "b2": 0.5, "b3": 0.5},
    {"m1": 0.0},
    {"b1": 2.0, "m2": 0.25},
]


def make_artifact(bound=2):
    session = ProvenanceSession.from_strings(POLYNOMIALS, forest=FOREST)
    return session.compress(bound, algorithm="greedy")


class TestEvalOptions:
    def test_defaults(self):
        options = EvalOptions()
        assert options.engine == "auto"
        assert options.backend == "auto"
        assert options.workers is None
        assert options.chunk_size is None

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EvalOptions(engine="turbo")
        with pytest.raises(ValueError, match="unknown backend"):
            EvalOptions(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            EvalOptions(workers=-1)
        with pytest.raises(ValueError, match="chunk_size"):
            EvalOptions(chunk_size=0)

    def test_frozen_and_hashable(self):
        options = EvalOptions(engine="delta")
        with pytest.raises(Exception):  # FrozenInstanceError
            options.engine = "dense"
        assert options == EvalOptions(engine="delta")
        assert hash(options) == hash(EvalOptions(engine="delta"))

    def test_coerce(self):
        assert EvalOptions.coerce(None) == EvalOptions()
        assert EvalOptions.coerce(None) is EvalOptions.coerce(None)  # shared
        options = EvalOptions(workers=2)
        assert EvalOptions.coerce(options) is options
        assert EvalOptions.coerce({"engine": "dense"}).engine == "dense"
        with pytest.raises(TypeError, match="options must be"):
            EvalOptions.coerce("delta")

    def test_with_revalidates(self):
        options = EvalOptions().with_(engine="delta")
        assert options.engine == "delta"
        with pytest.raises(ValueError, match="unknown engine"):
            options.with_(engine="warp")

    def test_exported_at_top_level(self):
        assert repro.EvalOptions is EvalOptions


class TestResolveOptions:
    def test_plain_options_pass_through(self):
        options = EvalOptions(engine="dense")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_options(options, where="here") is options

    def test_legacy_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="here: the engine"):
            options = resolve_options(where="here", engine="dense")
        assert options == EvalOptions(engine="dense")

    def test_mixing_is_a_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_options(
                EvalOptions(), where="here", engine="dense")

    def test_unknown_legacy_keys_rejected(self):
        with pytest.raises(TypeError, match="unknown legacy"):
            resolve_options(where="here", turbo=True)


class TestEntryPoints:
    """options= is accepted everywhere; legacy kwargs warn but agree."""

    def test_ask_many_options_vs_legacy_bit_identical(self):
        artifact = make_artifact()
        baseline = artifact.ask_many(SUITE)
        for engine in ("dense", "delta"):
            with_options = artifact.ask_many(
                SUITE, options=EvalOptions(engine=engine))
            with pytest.warns(DeprecationWarning, match="ask_many"):
                with_legacy = artifact.ask_many(SUITE, engine=engine)
            assert [a.values for a in with_options] == [
                a.values for a in baseline]
            assert with_options == with_legacy

    def test_session_ask_accepts_options(self):
        session = ProvenanceSession.from_strings(POLYNOMIALS, forest=FOREST)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            answer = session.ask(SUITE[0], options=EvalOptions(engine="dense"))
        assert answer.values == session.ask(SUITE[0]).values

    def test_evaluate_scenarios_options_vs_legacy(self):
        artifact = make_artifact()
        polynomials = artifact.polynomials
        suite = [{"SB": 0.5}, {"SM": 0.0}]
        baseline = evaluate_scenarios(polynomials, suite)
        routed = evaluate_scenarios(
            polynomials, suite, options=EvalOptions(engine="dense"))
        with pytest.warns(DeprecationWarning, match="evaluate_scenarios"):
            legacy = evaluate_scenarios(polynomials, suite, engine="dense")
        assert [list(row) for row in routed] == [list(row) for row in baseline]
        assert [list(row) for row in routed] == [list(row) for row in legacy]

    def test_top_k_and_sensitivity_accept_options(self):
        artifact = make_artifact()
        polynomials = artifact.polynomials
        sweep = [{"SB": 0.5}, {"SB": 2.0}, {"SM": 0.25}]
        options = EvalOptions(engine="dense")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ranked = top_k(polynomials, sweep, k=2, options=options)
            report = sensitivity(polynomials, sweep, options=options)
        assert ranked == top_k(polynomials, sweep, k=2)
        assert report == sensitivity(polynomials, sweep)

    def test_compress_backend_options_vs_legacy(self):
        session = ProvenanceSession.from_strings(POLYNOMIALS, forest=FOREST)
        routed = session.compress(
            2, algorithm="greedy", options=EvalOptions(backend="object"))
        with pytest.warns(DeprecationWarning, match="compress"):
            legacy = session.compress(2, algorithm="greedy", backend="object")
        assert routed.stats() == legacy.stats()
        assert routed.ask_many(SUITE) == legacy.ask_many(SUITE)

    def test_mixing_rejected_at_entry_points(self):
        artifact = make_artifact()
        with pytest.raises(TypeError, match="not both"):
            artifact.ask_many(
                SUITE, engine="dense", options=EvalOptions())


class TestErrorsHierarchy:
    def test_base_and_branches(self):
        from repro.errors import (
            ArtifactNotFound,
            CompressionError,
            EvaluationError,
            ReproError,
            SerializeError,
        )

        for error in (SerializeError, CompressionError, EvaluationError,
                      ArtifactNotFound):
            assert issubclass(error, ReproError)
        # Compatibility: historical ad-hoc bases still hold.
        assert issubclass(SerializeError, ValueError)
        assert issubclass(ArtifactNotFound, KeyError)

    def test_artifact_not_found_str_is_clean(self):
        from repro.errors import ArtifactNotFound

        # KeyError.__str__ would repr() the message; ours must not.
        assert str(ArtifactNotFound("no artifact 'x'")) == "no artifact 'x'"

    def test_adhoc_exceptions_joined_the_family(self):
        from repro.algorithms.result import InfeasibleBoundError
        from repro.core.forest import CompatibilityError
        from repro.core.parser import ParseError
        from repro.core.valuation import NonUniformError
        from repro.errors import CompressionError, ReproError

        assert issubclass(InfeasibleBoundError, CompressionError)
        for error in (CompatibilityError, ParseError, NonUniformError):
            assert issubclass(error, ReproError)

    def test_lazy_aliases_resolve(self):
        from repro.core.parser import ParseError

        assert repro.errors.ParseError is ParseError
        assert "InfeasibleBoundError" in dir(repro.errors)
        with pytest.raises(AttributeError):
            repro.errors.NoSuchError

    def test_serialize_module_reexports(self):
        from repro.core import serialize
        from repro.errors import SerializeError

        assert serialize.SerializeError is SerializeError


class TestMmapReporting:
    def test_binary_artifact_is_mmap_backed(self, tmp_path):
        from repro.api.artifact import CompressedProvenance

        path = tmp_path / "artifact.rpb"
        make_artifact().save(path)
        loaded = CompressedProvenance.load(path, mmap=True)
        assert loaded.mmap_active is True
        assert loaded.stats()["mmap_active"] is True

    def test_json_artifact_reports_eager_load_and_warns_once(self, tmp_path):
        import repro.api.artifact as artifact_module
        from repro.api.artifact import CompressedProvenance

        path = tmp_path / "artifact.json"
        make_artifact().save(path, format="json")
        artifact_module._WARNED_JSON_MMAP = False
        try:
            with pytest.warns(UserWarning, match="no effect on JSON"):
                loaded = CompressedProvenance.load(path, mmap=True)
            assert loaded.mmap_active is False
            assert loaded.stats()["mmap_active"] is False
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second load: no warning
                again = CompressedProvenance.load(path, mmap=True)
            assert again.mmap_active is False
        finally:
            artifact_module._WARNED_JSON_MMAP = False

    def test_json_load_without_mmap_does_not_warn(self, tmp_path):
        import repro.api.artifact as artifact_module
        from repro.api.artifact import CompressedProvenance

        path = tmp_path / "artifact.json"
        make_artifact().save(path, format="json")
        artifact_module._WARNED_JSON_MMAP = False
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            loaded = CompressedProvenance.load(path, mmap=False)
        assert loaded.mmap_active is False
