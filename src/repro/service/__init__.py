"""The what-if service: compress once, serve many scenarios.

A stdlib-only asyncio HTTP server around the compression artifacts —
``POST /artifacts`` compresses provenance into a content-addressed
``.rpb`` artifact, ``POST /artifacts/{id}/ask`` answers scenarios from
a warmed, mmap-backed copy, with concurrent single-scenario requests
micro-batched into one evaluator call. Start it with
``python -m repro serve`` or :func:`repro.service.app.start_service`.

Lazy exports, same pattern as :mod:`repro` itself — importing the
package costs nothing until a symbol is touched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.service.app import ServiceServer, WhatIfService, start_service
    from repro.service.batcher import MicroBatcher
    from repro.service.store import ArtifactStore
    from repro.service.warm import WarmArtifact

__all__ = [
    "ArtifactStore",
    "MicroBatcher",
    "ServiceServer",
    "WarmArtifact",
    "WhatIfService",
    "start_service",
]

_LAZY_EXPORTS = {
    "ArtifactStore": "repro.service.store",
    "MicroBatcher": "repro.service.batcher",
    "ServiceServer": "repro.service.app",
    "WarmArtifact": "repro.service.warm",
    "WhatIfService": "repro.service.app",
    "start_service": "repro.service.app",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
