"""Every worked example of the paper, pinned to its printed numbers.

These tests are the ground truth of the reproduction: Examples 1–8
(model), 13 (optimal DP trace), 15 (greedy trace), 17–24 (hardness
machinery). If one of these fails, the implementation has diverged from
the paper, whatever the other tests say.
"""

import pytest

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.algorithms.result import InfeasibleBoundError
from repro.core.abstraction import abstract, monomial_loss, variable_loss
from repro.core.forest import AbstractionForest
from repro.core.parser import parse
from repro.core.polynomial import Monomial, PolynomialSet
from repro.workloads.telephony import figure1_database, revenue_by_zip


class TestExample1And2:
    """The running-example query on the Figure 1 fragment."""

    def test_zip_10001_polynomial_matches_example2(self):
        cust, calls, plans = figure1_database()
        result = revenue_by_zip(cust, calls, plans)
        p = result.polynomial((10001,))
        expected = parse(
            "220.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "
            "75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3"
        )
        assert p.almost_equal(expected, tolerance=1e-9)

    def test_zip_10002_polynomial_matches_example13_p2(self):
        cust, calls, plans = figure1_database()
        result = revenue_by_zip(cust, calls, plans)
        p = result.polynomial((10002,))
        expected = parse(
            "77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + "
            "69.7*b2*m1 + 100.65*b2*m3"
        )
        assert p.almost_equal(expected, tolerance=1e-9)

    def test_quarter_abstraction_of_example2(self, ex13_polys, figure3_tree):
        """Merging m1,m3 into q1 gives the second Example 2 polynomial."""
        forest = AbstractionForest([figure3_tree.clean(ex13_polys.variables)])
        abstracted = abstract(PolynomialSet([ex13_polys[0]]), forest.root_vvs())
        expected = parse(
            "460.8*p1*q1 + 241.85*f1*q1 + 148.4*y1*q1 + 66.2*v*q1"
        )
        assert abstracted[0].almost_equal(expected, tolerance=1e-9)


class TestExample5And6:
    def test_s1_measures(self, ex13_polys, figure2_tree):
        """|P↓S1|_V = 4, |P↓S1|_M = 4 on the polynomial P of Example 2."""
        p1 = PolynomialSet([ex13_polys[0]])
        forest = AbstractionForest([figure2_tree])
        s1 = forest.vvs({"Business", "Special", "Standard"})
        abstracted = abstract(p1, s1)
        # P (zip 10001) holds no business plans, so only Special+Standard
        # appear; the paper's count of 4 variables includes the months.
        assert abstracted.num_monomials == 4
        assert abstracted.num_variables == 4

    def test_s5_measures(self, ex13_polys, figure2_tree):
        """|P↓S5|_V = 3, |P↓S5|_M = 2."""
        p1 = PolynomialSet([ex13_polys[0]])
        forest = AbstractionForest([figure2_tree])
        s5 = forest.vvs({"Plans"})
        abstracted = abstract(p1, s5)
        assert abstracted.num_monomials == 2
        assert abstracted.num_variables == 3

    def test_example6_loss_values(self, ex13_polys, figure2_tree):
        """ML(S1)=4, ML(S5)=6, VL(S1)=2, VL(S5)=3."""
        p1 = PolynomialSet([ex13_polys[0]])
        forest = AbstractionForest([figure2_tree])
        s1 = forest.vvs({"Business", "Special", "Standard"})
        s5 = forest.vvs({"Plans"})
        assert monomial_loss(p1, s1) == 4
        assert monomial_loss(p1, s5) == 6
        assert variable_loss(p1, s1) == 2
        assert variable_loss(p1, s5) == 3


class TestExample8:
    def test_months_tree_cannot_reach_bound_3(self, ex13_polys, figure3_tree):
        """Maximal compression of P via the months tree leaves 4 monomials."""
        p1 = PolynomialSet([ex13_polys[0]])
        with pytest.raises(InfeasibleBoundError) as excinfo:
            optimal_vvs(p1, figure3_tree, bound=3)
        assert excinfo.value.min_achievable_size == 4


class TestExample13:
    def test_k_is_five(self, ex13_polys):
        assert ex13_polys.num_monomials - 9 == 5

    def test_optimal_vvs(self, ex13_polys, figure2_tree):
        result = optimal_vvs(ex13_polys, figure2_tree, bound=9)
        assert result.vvs.labels == frozenset({"SB", "Special", "e", "p1"})

    def test_optimal_losses(self, ex13_polys, figure2_tree):
        result = optimal_vvs(ex13_polys, figure2_tree, bound=9)
        assert result.monomial_loss == 6
        assert result.variable_loss == 3

    def test_sb_abstraction_of_p2(self, ex13_polys, figure2_tree):
        """147.6·SB·m1 + 181.15·SB·m3 replaces the four b1/b2 monomials."""
        forest = AbstractionForest([figure2_tree])
        vvs = forest.vvs({"SB", "e", "Standard", "Special"})
        abstracted = abstract(PolynomialSet([ex13_polys[1]]), vvs)
        p = abstracted[0]
        assert p.coefficient(Monomial.of("SB", "m1")) == pytest.approx(147.6)
        assert p.coefficient(Monomial.of("SB", "m3")) == pytest.approx(181.15)
        assert p.num_monomials == 4


class TestExample15:
    def test_greedy_full_trace(self, ex13_polys, paper_forest):
        result = greedy_vvs(ex13_polys, paper_forest, bound=4)
        assert [s.chosen for s in result.trace] == ["q1", "SB", "Business",
                                                    "Special"]
        assert [s.cumulative_ml for s in result.trace] == [7, 8, 9, 11]
        assert result.variable_loss == 5

    def test_stated_optimum(self, ex13_polys, paper_forest):
        optimum = brute_force_vvs(ex13_polys, paper_forest, bound=4)
        assert optimum.vvs.labels == frozenset({"q1", "Special", "SB", "e", "p1"})
        assert optimum.monomial_loss == 10
        assert optimum.variable_loss == 4


class TestExamples17Through24:
    def test_example17_19(self):
        from repro.hardness import claim18_sizes, uniformly_partitioned

        p = uniformly_partitioned(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)])
        assert p.num_monomials == 4 * 9
        assert p.num_variables == 4 * 3
        assert claim18_sizes(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)]) == (36, 12)

    def test_example21_figure13(self):
        from repro.hardness import flat_abstraction

        forest = flat_abstraction(4, 3)
        roots = {tree.root.label for tree in forest}
        assert roots == {"x(1)", "x(2)", "x(3)", "x(4)"}
        for tree in forest:
            assert len(tree.leaves) == 3

    def test_example24_abstraction(self):
        from repro.core.abstraction import abstract_counts
        from repro.hardness import flat_abstraction, flat_cut, uniformly_partitioned

        p = PolynomialSet(
            [uniformly_partitioned(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)])]
        )
        forest = flat_abstraction(4, 3)
        vvs = flat_cut(forest, {1, 3}, 4, 3)
        size, granularity = abstract_counts(p, vvs.mapping())
        # P(1,2): 3 monomials, P(1,3): 1, P(2,3): 3, P(2,4): 9.
        assert size == 16
        # {x(1), x(3)} ∪ {x(2)_1..3, x(4)_1..3}.
        assert granularity == 8

    def test_example24_coefficients(self):
        from repro.hardness import (
            flat_abstraction,
            flat_cut,
            uniformly_partitioned,
            variable_name,
        )

        p = uniformly_partitioned(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)])
        forest = flat_abstraction(4, 3)
        vvs = flat_cut(forest, {1, 3}, 4, 3)
        abstracted = p.substitute(vvs.mapping())
        # P(1,3) collapses to 9·x(1)·x(3).
        assert abstracted.coefficient(Monomial.of("x(1)", "x(3)")) == 9
        # P(1,2) yields 3·x(1)·x(2)_j for each j.
        assert abstracted.coefficient(
            Monomial.of("x(1)", variable_name(2, 1))
        ) == 3
