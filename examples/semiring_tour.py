"""One provenance polynomial, many semantics.

Runs an SPJ query over tuple-annotated relations (the semiring model of
Green et al., the paper's reference [36]) and specializes the resulting
N[X] provenance into six different semirings — set semantics, bags,
costs, probabilities, lineage, and why-provenance — without re-running
the query once.

Run:  python examples/semiring_tour.py
"""

from repro.engine import Query, Relation, rename
from repro.semiring import (
    BOOLEAN,
    LINEAGE,
    NATURAL,
    TROPICAL,
    VITERBI,
    WHY,
    evaluate_in,
)


def main():
    flights = Relation.from_rows(
        ["src", "dst"],
        [("TLV", "CDG"), ("TLV", "JFK"), ("CDG", "JFK"), ("CDG", "NRT")],
    ).with_tuple_variables("f")
    onward = rename(flights, {"src": "dst", "dst": "final"})
    # Destinations reachable from TLV: direct, or with one stop.
    one_stop = (
        Query(flights)
        .join(onward, on="dst")
        .where(lambda r: r["src"] == "TLV")
        .select("src", "final")
    )
    direct = (
        Query(flights)
        .where(lambda r: r["src"] == "TLV")
        .select("src", "dst")
        .rename({"dst": "final"})
    )
    itineraries = direct.union(one_stop)

    print("provenance polynomials (N[X]):")
    for row, annotation in itineraries.annotated_rows():
        print(f"  {row}: {annotation}")

    # The f-variables stand for flight tuples; specialize them:
    per_flight = {
        "f0": ("CDG->JFK", 4500, 0.9),
        "f1": ("CDG->NRT", 6000, 0.7),
        "f2": ("TLV->CDG", 1500, 0.95),
        "f3": ("TLV->JFK", 5500, 0.8),
    }
    print("\nspecializations of the (TLV, JFK) itinerary provenance:")
    polynomial = dict(itineraries.annotated_rows())[("TLV", "JFK")]

    print("  set semantics (all flights exist):",
          evaluate_in(polynomial, BOOLEAN, {}))
    print("  without the direct flight f3:    ",
          evaluate_in(polynomial, BOOLEAN, {"f3": False}))
    print("  bag multiplicity (all once):     ",
          evaluate_in(polynomial, NATURAL, {}))
    print("  cheapest itinerary (tropical):   ",
          evaluate_in(polynomial, TROPICAL,
                      {v: cost for v, (_, cost, _) in per_flight.items()}))
    print("  most reliable (viterbi):         ",
          evaluate_in(polynomial, VITERBI,
                      {v: p for v, (_, _, p) in per_flight.items()}))
    print("  lineage:                          ",
          sorted(evaluate_in(
              polynomial, LINEAGE,
              {v: frozenset({name}) for v, (name, _, _) in per_flight.items()},
          )))
    witnesses = evaluate_in(
        polynomial, WHY,
        {v: frozenset([frozenset({name})])
         for v, (name, _, _) in per_flight.items()},
    )
    print("  why-provenance witnesses:         ",
          sorted(sorted(w) for w in witnesses))


if __name__ == "__main__":
    main()
