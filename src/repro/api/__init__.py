"""High-level facade: query → compress → ask, as one object graph.

* :class:`~repro.api.session.ProvenanceSession` — capture provenance
  (SQL via :mod:`repro.engine`, polynomial strings, or existing
  objects), attach an abstraction forest, ``compress(bound=...)``;
* :class:`~repro.api.artifact.CompressedProvenance` — the shippable
  compression artifact; ``ask`` / ``ask_many`` answer scenarios with
  an exactness flag; one JSON envelope via
  :mod:`repro.core.serialize`;
* :class:`~repro.api.artifact.Answer` — values + ``exact``;
* :class:`~repro.api.mutation.MutationResult` — the unified return
  shape of every artifact mutation (``session.extend`` /
  ``artifact.refresh`` / the CLI and service ``extend`` surfaces).

Algorithm selection goes through
:mod:`repro.algorithms.registry` (``"auto"`` policy included).
"""

from repro.api.artifact import Answer, CompressedProvenance
from repro.api.mutation import MutationResult, extend_artifact
from repro.api.session import ProvenanceSession, as_forest

__all__ = [
    "ProvenanceSession",
    "CompressedProvenance",
    "Answer",
    "MutationResult",
    "extend_artifact",
    "as_forest",
]
