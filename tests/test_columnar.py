"""The columnar compression core is pinned against the object path.

Every columnar entry point — ``abstract_counts``/``abstract``,
``LossIndex``, ``greedy_vvs``, ``optimal_vvs`` — must be
count-identical to the object reference implementation: same sizes and
granularities, same per-node losses, same selected VVS under the same
deterministic tie-breaks, same traces. Hypothesis drives the pinning
over adversarial inputs: exponents ≠ 1, substitutions whose targets
collide with existing variables (the exponent-merging path), Fraction
coefficients, empty and variable-free polynomials, and pickled/
unpickled sets (interned ids do not survive pickling — names do).
"""

import pickle
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.greedy import _object_greedy, greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.core.abstraction import LossIndex, abstract, abstract_counts, losses
from repro.core.columnar import (
    BACKENDS,
    ColumnarUnsupportedError,
    gather_ranges,
    invert_index,
    resolve_backend,
    unique_row_ids,
)
from repro.core.forest import AbstractionForest
from repro.core.parser import parse_set
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.tree import AbstractionTree
from repro.workloads.random_polys import random_compatible_instance

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

VARIABLES_POOL = [f"v{i}" for i in range(8)]

variable_names = st.sampled_from(VARIABLES_POOL)

coefficients = st.one_of(
    st.integers(-50, 50).filter(bool),
    st.builds(Fraction, st.integers(-9, 9).filter(bool), st.integers(1, 7)),
)


@st.composite
def monomials(draw):
    pairs = draw(
        st.dictionaries(variable_names, st.integers(1, 4), max_size=4)
    )
    return Monomial(pairs.items())


@st.composite
def polynomial_sets(draw):
    """Multisets mixing empty, constant and multi-variable polynomials."""
    body = draw(
        st.lists(
            st.dictionaries(monomials(), coefficients, max_size=6),
            min_size=0,
            max_size=4,
        )
    )
    return PolynomialSet(Polynomial(terms) for terms in body)


#: Substitutions including collision-inducing targets: several sources
#: mapping to one fresh name *and* to names already present, so merged
#: exponents and vanishing-variable bookkeeping are exercised.
mappings = st.dictionaries(
    variable_names,
    st.sampled_from(VARIABLES_POOL + ["g0", "g1"]),
    max_size=5,
)


@st.composite
def instances(draw):
    seed = draw(st.integers(0, 10_000))
    return random_compatible_instance(
        seed=seed,
        num_trees=draw(st.integers(1, 3)),
        leaves_per_tree=draw(st.integers(2, 8)),
        num_polynomials=draw(st.integers(1, 5)),
        monomials_per_polynomial=draw(st.integers(1, 12)),
    )


# ---------------------------------------------------------------------------
# Counting and materialization
# ---------------------------------------------------------------------------


class TestAbstractCounts:
    @settings(deadline=None)
    @given(polynomial_sets(), mappings)
    def test_columnar_matches_object(self, polys, mapping):
        assert abstract_counts(polys, mapping, backend="columnar") == \
            abstract_counts(polys, mapping, backend="object")

    @settings(deadline=None)
    @given(polynomial_sets(), mappings)
    def test_counts_match_materialization_keys(self, polys, mapping):
        """Columnar counts agree with the keys the object path builds.

        (Materialized sizes may be *smaller* when merged coefficients
        cancel to zero — counts deliberately ignore coefficients, on
        both backends alike.)
        """
        size, granularity = abstract_counts(polys, mapping, backend="columnar")
        keys = set()
        variables = set()
        for polynomial in polys:
            poly_keys = {
                monomial.substitute(mapping).key
                for monomial in polynomial.monomials
            }
            keys.update((id(polynomial), key) for key in poly_keys)
            for key in poly_keys:
                variables.update(vid for vid, _ in key)
        assert size == len(keys)
        assert granularity == len(variables)

    @settings(deadline=None)
    @given(polynomial_sets(), mappings)
    def test_unpickled_sets_count_identically(self, polys, mapping):
        restored = pickle.loads(pickle.dumps(polys))
        assert restored == polys
        assert abstract_counts(restored, mapping, backend="columnar") == \
            abstract_counts(polys, mapping, backend="object")

    def test_empty_and_variable_free(self):
        empty = PolynomialSet([])
        assert abstract_counts(empty, {"a": "b"}, backend="columnar") == (0, 0)
        constants = PolynomialSet(
            [Polynomial.constant(3), Polynomial.zero(), Polynomial.constant(7)]
        )
        for backend in ("object", "columnar"):
            assert abstract_counts(constants, {"a": "b"}, backend=backend) == (2, 0)

    def test_losses_combines_both_measures(self, ):
        polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3 + 6*e*m1"])
        tree = AbstractionTree.from_nested(("B", [("SB", ["b1", "b2"]), "e"]))
        forest = AbstractionForest([tree])
        vvs = forest.vvs({"SB", "e"})
        for backend in BACKENDS:
            assert losses(polys, vvs, backend=backend) == (2, 1)


class TestAbstractMaterialization:
    @settings(deadline=None)
    @given(instances())
    def test_exact_coefficients_are_identical(self, instance):
        """Int/Fraction coefficients: columnar ``P↓S`` equals object's."""
        polys, forest = instance
        for vvs in (forest.root_vvs(), forest.leaf_vvs()):
            assert abstract(polys, vvs, backend="columnar") == \
                abstract(polys, vvs, backend="object")

    def test_zero_cancellation_matches(self):
        polys = parse_set(["2*a*x - 2*b*x + c"])
        forest = AbstractionForest([AbstractionTree.from_nested(("g", ["a", "b"]))])
        vvs = forest.root_vvs()
        assert abstract(polys, vvs, backend="columnar") == \
            abstract(polys, vvs, backend="object")

    def test_float_coefficients_are_close(self):
        polys = parse_set(["0.1*a*x + 0.2*b*x + 0.7*c"])
        forest = AbstractionForest([AbstractionTree.from_nested(("g", ["a", "b"]))])
        vvs = forest.root_vvs()
        columnar = abstract(polys, vvs, backend="columnar")
        assert columnar.almost_equal(abstract(polys, vvs, backend="object"))


# ---------------------------------------------------------------------------
# LossIndex
# ---------------------------------------------------------------------------


def assert_loss_index_identical(polys, tree):
    object_index = LossIndex(polys, tree, backend="object")
    columnar_index = LossIndex(polys, tree, backend="columnar")
    for label in tree.labels:
        assert object_index.ml(label) == columnar_index.ml(label), label
        assert object_index.vl(label) == columnar_index.vl(label), label
        assert object_index.leaves_present(label) == \
            columnar_index.leaves_present(label), label
        assert object_index.leaf_count(label) == \
            columnar_index.leaf_count(label), label
    assert object_index.max_ml == columnar_index.max_ml


class TestLossIndex:
    @settings(deadline=None)
    @given(instances())
    def test_columnar_matches_object(self, instance):
        polys, forest = instance
        for tree in forest:
            assert_loss_index_identical(polys, tree)

    def test_exponents_and_sentinel_residuals(self):
        """Residual keys carry the member's exponent (sentinel slot)."""
        polys = parse_set(["b1^2*x + b2^2*x + b1^3*x + 2*b1^2 + 5*b2^2"])
        tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
        assert_loss_index_identical(polys, tree)
        index = LossIndex(polys, tree, backend="columnar")
        # b1^2*x/b2^2*x merge and the constants' residuals merge; the
        # b1^3 residual is kept apart by its exponent.
        assert index.ml("SB") == 2

    def test_unpickled_set(self):
        polys = parse_set(["2*b1*m1 + 3*b2*m1 + b1^2"])
        restored = pickle.loads(pickle.dumps(polys))
        tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
        assert_loss_index_identical(restored, tree)


# ---------------------------------------------------------------------------
# Full solver runs
# ---------------------------------------------------------------------------


def trace_tuples(result):
    return [
        (s.chosen, s.delta_ml, s.delta_vl, s.cumulative_ml, s.cumulative_vl)
        for s in result.trace
    ]


class TestGreedyBackend:
    @settings(deadline=None, max_examples=40)
    @given(instances(), st.integers(1, 4), st.booleans())
    def test_columnar_run_is_identical(self, instance, divisor, tie_break):
        polys, forest = instance
        bound = max(1, polys.num_monomials // divisor)
        object_result = _object_greedy(
            polys, forest, bound, ml_tie_break=tie_break
        )
        columnar_result = greedy_vvs(
            polys, forest, bound, ml_tie_break=tie_break, backend="columnar"
        )
        assert trace_tuples(object_result) == trace_tuples(columnar_result)
        assert object_result.vvs.labels == columnar_result.vvs.labels
        assert object_result.monomial_loss == columnar_result.monomial_loss
        assert object_result.variable_loss == columnar_result.variable_loss
        assert object_result.abstracted_size == columnar_result.abstracted_size
        assert (
            object_result.abstracted_granularity
            == columnar_result.abstracted_granularity
        )

    @settings(deadline=None, max_examples=15)
    @given(instances())
    def test_unpickled_set_runs_identically(self, instance):
        polys, forest = instance
        restored = pickle.loads(pickle.dumps(polys))
        bound = max(1, polys.num_monomials // 3)
        assert trace_tuples(
            greedy_vvs(restored, forest, bound, backend="columnar")
        ) == trace_tuples(_object_greedy(polys, forest, bound))

    def test_merged_out_tree_roots_have_no_watcher(self):
        """Rows holding a fully-merged tree's root must not touch ranks.

        Regression: a root's ``parent_vid`` is -1; without masking it,
        the watcher lookup negative-indexed into the candidate slot
        table and corrupted (or crashed on) another candidate's ΔML
        bookkeeping once a later merge in a different tree rewrote
        rows holding that root.
        """
        polys = parse_set([
            "a1*b1*c1 + a2*b2*c2 + a1*b2*c3 + a2*b1*c4 + a1*c1 + b1*c2 "
            "+ a2*b1 + a1*b2",
        ])
        forest = AbstractionForest([
            AbstractionTree.from_nested(("RA", ["a1", "a2"])),
            AbstractionTree.from_nested(("RB", ["b1", "b2"])),
            AbstractionTree.from_nested(
                ("RC", [("N1", ["c1", "c2"]), ("N2", ["c3", "c4"])])
            ),
        ])
        object_result = _object_greedy(polys, forest, 1)
        columnar_result = greedy_vvs(polys, forest, 1, backend="columnar")
        assert trace_tuples(object_result) == trace_tuples(columnar_result)
        assert object_result.vvs.labels == columnar_result.vvs.labels

    def test_explicit_columnar_rejects_incompatible_forest(self):
        polys = parse_set(["b1*b2 + b1"])
        tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
        with pytest.raises(ColumnarUnsupportedError):
            greedy_vvs(polys, tree, bound=1, backend="columnar")
        # auto falls back to the object path instead of raising.
        fallback = greedy_vvs(polys, tree, bound=1, backend="auto")
        assert fallback.vvs.labels == _object_greedy(polys, tree, 1).vvs.labels

    def test_exponents_fractions_and_sentinels(self):
        polys = PolynomialSet([
            Polynomial({
                Monomial.of(("b1", 2), "x"): Fraction(1, 3),
                Monomial.of(("b2", 2), "x"): Fraction(2, 3),
                Monomial.of(("b1", 3)): 4,
                Monomial.of("m1"): 1,
            }),
            Polynomial.zero(),
            Polynomial.constant(7),
        ])
        forest = AbstractionForest([
            AbstractionTree.from_nested(("SB", ["b1", "b2"])),
            AbstractionTree.from_nested(("Q", ["m1"])),
        ])
        for bound in (1, 2, 4, 100):
            object_result = _object_greedy(polys, forest.clean(polys), bound,
                                           clean=False)
            columnar_result = greedy_vvs(polys, forest.clean(polys), bound,
                                         clean=False, backend="columnar")
            assert trace_tuples(object_result) == trace_tuples(columnar_result)
            assert object_result.vvs.labels == columnar_result.vvs.labels


class TestOptimalBackend:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 5_000), st.integers(1, 4))
    def test_columnar_run_is_identical(self, seed, divisor):
        polys, forest = random_compatible_instance(
            seed=seed, num_trees=1, leaves_per_tree=8,
            num_polynomials=4, monomials_per_polynomial=10,
        )
        from repro.algorithms.result import InfeasibleBoundError

        tree = forest.trees[0]
        bound = max(1, polys.num_monomials // divisor)
        try:
            object_result = optimal_vvs(polys, tree, bound, backend="object")
        except InfeasibleBoundError as error:
            with pytest.raises(InfeasibleBoundError) as caught:
                optimal_vvs(polys, tree, bound, backend="columnar")
            assert caught.value.min_achievable_size == error.min_achievable_size
            return
        columnar_result = optimal_vvs(polys, tree, bound, backend="columnar")
        assert object_result.vvs.labels == columnar_result.vvs.labels
        assert object_result.monomial_loss == columnar_result.monomial_loss
        assert object_result.variable_loss == columnar_result.variable_loss
        assert object_result.abstracted_size == columnar_result.abstracted_size


# ---------------------------------------------------------------------------
# Shared CSR helpers
# ---------------------------------------------------------------------------


class TestHelpers:
    def test_resolve_backend_validates(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("vectorized", 10)
        assert resolve_backend("object", 10**9) == "object"
        assert resolve_backend("columnar", 1) == "columnar"
        assert resolve_backend("auto", 1) == "object"
        assert resolve_backend("auto", 10**6) == "columnar"

    def test_unique_row_ids_groups_exactly(self):
        import numpy

        matrix = numpy.array([[1, 2], [3, 4], [1, 2], [1, 3]])
        ids, count = unique_row_ids(matrix)
        assert count == 3
        assert ids[0] == ids[2]
        assert len({int(i) for i in ids}) == 3
        empty_ids, empty_count = unique_row_ids(numpy.empty((0, 3), dtype=int))
        assert empty_count == 0 and len(empty_ids) == 0

    def test_invert_index_matches_bruteforce(self):
        import numpy

        values = numpy.array([2, 0, 2, 1, 0, 2])
        starts, order = invert_index(values, 3)
        for value in range(3):
            positions = order[starts[value]:starts[value + 1]]
            assert sorted(positions.tolist()) == [
                i for i, v in enumerate(values) if v == value
            ]

    def test_gather_ranges_concatenates(self):
        import numpy

        starts = numpy.array([5, 0, 9])
        counts = numpy.array([2, 3, 0])
        assert gather_ranges(starts, counts).tolist() == [5, 6, 0, 1, 2]
