"""CI chaos probe: scheduled faults, bit-identical answers anyway.

Part A boots no server: a 49,000-scenario sweep runs across a process
pool while a deterministic fault plan (:mod:`repro.faults`) crashes one
worker at start-up and hangs one shard past the shard timeout. The
healed parallel matrix must equal the serial one bit for bit.

Part B boots the real server (``python -m repro serve``) with a
``REPRO_FAULT_PLAN`` environment plan that corrupts the first artifact
spool write. The store's decode-verify + retry loop must absorb the
corruption: the create still succeeds, every answer stays bit-identical
to an in-process ask over the same scenarios, and ``/healthz`` reports
the quarantined torn write. Exits non-zero on any mismatch — the CI
chaos-smoke gate.

Usage::

    PYTHONPATH=src python benchmarks/probe_chaos.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy

from probe_service import BOUND, FOREST, POLYNOMIALS, boot_server, request
from repro.faults import ENV_VAR, FaultPlan, FaultSpec, installed
from repro.scenarios import Sweep, evaluate_scenarios
from repro.scenarios.parallel import evaluate_scenarios_parallel
from repro.util.retry import RetryPolicy
from repro.workloads.random_polys import random_polynomials

SWEEP_SCENARIOS = 49_000

#: Chaos heals several times over one probe; keep the backoff tight.
CHAOS_RETRY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.2)


def chaos_sweep():
    """Part A: crash + hang during a 49k-scenario parallel sweep."""
    pool = [f"v{i}" for i in range(12)]
    polys = random_polynomials(8, 20, [pool], seed=5, extra_variables=4)
    sweep = Sweep.random(
        sorted(polys.variables), SWEEP_SCENARIOS, seed=31, changes=4
    )
    serial = evaluate_scenarios(polys, sweep)

    with tempfile.TemporaryDirectory() as tokens:
        plan = FaultPlan(
            [
                FaultSpec("worker.start", "crash", once=True),
                FaultSpec("shard.evaluate", "delay", at=3, delay=5.0,
                          once=True),
            ],
            token_dir=tokens,
        )
        with installed(plan, env=True):
            begin = time.perf_counter()
            healed = evaluate_scenarios_parallel(
                polys, sweep, workers=2, min_parallel=0, chunk_size=1024,
                retry=CHAOS_RETRY, shard_timeout=0.5,
            )
            seconds = time.perf_counter() - begin

    assert healed.shape == serial.shape, (healed.shape, serial.shape)
    assert numpy.array_equal(serial, healed), (
        "healed sweep diverged from the serial baseline"
    )
    print(
        f"sweep chaos OK: {SWEEP_SCENARIOS} scenarios healed through one "
        f"worker crash + one hung shard in {seconds:.2f}s, bit-identical"
    )


def chaos_service():
    """Part B: the server survives a corrupted first spool write."""
    scenarios = [
        {"b1": 0.5 + 0.01 * index, "m1": 1.5 - 0.01 * index}
        for index in range(10)
    ]
    from repro.api.session import ProvenanceSession

    session = ProvenanceSession.from_strings(
        POLYNOMIALS, forest=[(tree[0], tree[1]) for tree in FOREST]
    )
    artifact = session.compress(BOUND, algorithm="greedy")
    expected = [
        answer.values
        for answer in artifact.ask_many([dict(s) for s in scenarios])
    ]

    plan = FaultPlan(
        [FaultSpec("store.spool_write", "corrupt", at=1, offset=0)]
    )
    env = dict(os.environ)
    env[ENV_VAR] = plan.to_json()
    with tempfile.TemporaryDirectory() as spool:
        process, port = boot_server(spool, env=env)
        try:
            status, created = request(port, "POST", "/artifacts", {
                "polynomials": POLYNOMIALS,
                "forest": FOREST,
                "bound": BOUND,
                "algorithm": "greedy",
            })
            assert status == 201, (status, created)
            artifact_id = created["id"]
            for index, scenario in enumerate(scenarios):
                status, body = request(
                    port, "POST", f"/artifacts/{artifact_id}/ask",
                    {"scenario": {"changes": scenario}},
                )
                assert status == 200, (status, body)
                answer = tuple(body["answers"][0]["values"])
                assert answer == expected[index], (
                    f"answer diverged at scenario {index} after the "
                    "corrupted spool write"
                )
            status, health = request(port, "GET", "/healthz")
            assert status == 200, (status, health)
            assert health["store"]["quarantined"] >= 1, health
        finally:
            process.terminate()
            process.wait(timeout=30)
    print(
        f"service chaos OK: corrupted spool write quarantined "
        f"({health['store']['quarantined']}), {len(scenarios)} asks "
        "bit-identical"
    )


def main():
    chaos_sweep()
    chaos_service()
    print("chaos probe OK")


if __name__ == "__main__":
    main()
