"""Whitebox tests for the greedy algorithm's working state.

The working state is the piece Example 15 forced into existence (ML is
not additive across trees); these tests pin its internal contracts:
simulate == apply, index consistency, and size bookkeeping. The state
is id-addressed (interned variables); ``ids`` translates.
"""

import pytest

from repro.algorithms.greedy import _WorkingState
from repro.core.interning import VARIABLES
from repro.core.parser import parse_set


def ids(*names):
    return [VARIABLES.intern(name) for name in names]


def vid(name):
    return VARIABLES.intern(name)


@pytest.fixture
def state():
    return _WorkingState(
        parse_set(["2*a*x + 3*b*x + 4*a*y", "5*b*x + 6*c*x"])
    )


class TestConstruction:
    def test_initial_size(self, state):
        assert state.size == 5

    def test_initial_granularity(self, state):
        assert state.granularity == 5  # a, b, c, x, y

    def test_presence(self, state):
        assert state.present("a")
        assert state.present("x")
        assert not state.present("zz")

    def test_index_covers_every_monomial(self, state):
        # Each of the 5 monomials has 2 variables -> 10 index entries.
        assert sum(len(entries) for entries in state.index.values()) == 10


class TestSimulateAndApply:
    def test_simulate_matches_apply(self, state):
        predicted = state.simulate_merge(ids("a", "b"), vid("g"))
        actual, _ = state.apply_merge(ids("a", "b"), vid("g"))
        assert predicted == actual == 1  # a*x + b*x merge in polynomial 0

    def test_no_cross_polynomial_merge(self, state):
        # b*x exists in both polynomials; merging b,c only merges inside
        # polynomial 1 (b*x + c*x -> g*x).
        assert state.simulate_merge(ids("b", "c"), vid("g")) == 1

    def test_simulate_is_pure(self, state):
        before = state.size
        state.simulate_merge(ids("a", "b"), vid("g"))
        assert state.size == before

    def test_apply_updates_size(self, state):
        state.apply_merge(ids("a", "b"), vid("g"))
        assert state.size == 4

    def test_apply_updates_granularity(self, state):
        state.apply_merge(ids("a", "b"), vid("g"))
        # a and b replaced by g: {g, c, x, y}.
        assert state.granularity == 4
        assert state.present("g")
        assert not state.present("a")

    def test_apply_reindexes_residual_variables(self, state):
        state.apply_merge(ids("a", "b"), vid("g"))
        # x's index must now reference the rewritten keys only.
        for poly_number, key in state.index[vid("x")]:
            assert key in state.polys[poly_number]

    def test_apply_reports_rewrites(self, state):
        # Merging a,b rewrites the three monomials of polynomial 0 and
        # one of polynomial 1; exactly one rewrite collides (a*x ~ b*x).
        _, rewrites = state.apply_merge(ids("a", "b"), vid("g"))
        assert len(rewrites) == 4
        assert sum(1 for *_, survived in rewrites if not survived) == 1
        for poly_number, old_key, new_key, _survived in rewrites:
            assert old_key not in state.polys[poly_number]
            assert new_key in state.polys[poly_number]

    def test_sequential_merges_compose(self, state):
        first, _ = state.apply_merge(ids("a", "b"), vid("g"))
        second, _ = state.apply_merge(ids("x", "y"), vid("h"))
        # After g: poly0 = {g*x, g*y}, poly1 = {g*x, c*x}. Merging x,y:
        # poly0 collapses to {g*h} (1 loss); poly1 -> {g*h, c*h} (0).
        assert first == 1
        assert second == 1
        assert state.size == 3

    def test_cross_tree_interaction(self):
        """The Example 15 effect: earlier merges enable later ones."""
        state = _WorkingState(parse_set(["a*x + b*y"]))
        assert state.simulate_merge(ids("a", "b"), vid("g")) == 0
        state.apply_merge(ids("x", "y"), vid("h"))
        assert state.simulate_merge(ids("a", "b"), vid("g")) == 1

    def test_exponents_preserved(self):
        state = _WorkingState(parse_set(["a^2*x + b^2*x + b*x"]))
        loss, _ = state.apply_merge(ids("a", "b"), vid("g"))
        # a^2*x and b^2*x merge (both g^2*x); b*x stays g*x.
        assert loss == 1
        assert state.size == 2
