"""The paper's running example at benchmark scale, via the facade.

Generates a telephony database (§4.2), captures the revenue-per-zip
provenance, compresses it through a :class:`ProvenanceSession`, answers
a scenario suite off the artifact (with exactness flags), and measures
the Figure 10 assignment speedup.

Run:  python examples/telephony_whatif.py
"""

from repro import ProvenanceSession, Scenario, ScenarioSuite
from repro.scenarios import assignment_speedup
from repro.workloads.telephony import TelephonyBenchmark


def main():
    bench = TelephonyBenchmark(
        customers=400, num_plans=32, months=12, zip_pool=40, seed=7
    )
    cust, calls, plans = bench.relations()
    print(f"database: {len(cust)} customers, {len(calls)} call records, "
          f"{len(plans)} plan prices")

    # Capture + hierarchy in one session: plans in 8 groups, months in
    # quarters.
    session = ProvenanceSession.from_polynomials(
        bench.provenance(),
        forest=[bench.plans_abstraction_tree((8,)),
                bench.months_abstraction_tree()],
    )
    provenance = session.polynomials
    print(f"provenance: {len(provenance)} polynomials "
          f"({provenance.num_monomials} monomials, "
          f"{provenance.num_variables} variables)")

    bound = provenance.num_monomials // 2
    artifact = session.compress(bound=bound)  # auto -> greedy (two trees)
    print(f"\n{artifact.algorithm} abstraction to bound {bound}: "
          f"{artifact.abstracted_size} monomials "
          f"({artifact.variable_loss} variables lost, "
          f"{artifact.abstracted_granularity} kept)")

    # Scenarios an analyst might run. Quarter-uniform ones are answered
    # EXACTLY by the artifact; a single-month change is approximate
    # once months have merged into quarters.
    suite = ScenarioSuite([
        Scenario.uniform("Q1 prices -20%", ["m1", "m2", "m3"], 0.8),
        Scenario("January only -20%", {"m1": 0.8}),
    ])
    raw = suite.evaluate(provenance)
    for answer in artifact.ask_many(suite):
        mode = "exactly" if answer.exact else "approximately"
        print(f"\nscenario '{answer.name}' is answered {mode} "
              "after compression")
        worst = max(
            abs(a - b) for a, b in zip(answer.values, raw[answer.name])
        )
        print(f"  max discrepancy across {len(answer)} zips: {worst:.2e}")

    # Figure 10's measurement: how much faster do suites of scenarios run?
    speed_suite = [
        Scenario.uniform(f"scenario-{i}", [f"m{m}" for m in range(1, 13)],
                         1.0 - 0.05 * i)
        for i in range(10)
    ]
    report = assignment_speedup(
        provenance, artifact.polynomials, speed_suite, vvs=artifact.vvs
    )
    print(f"\nassignment time: raw {report.raw_seconds * 1e3:.2f} ms vs "
          f"compressed {report.abstracted_seconds * 1e3:.2f} ms "
          f"(speedup {report.speedup_percent:.1f}%, "
          f"size ratio {report.compression_ratio:.2f})")


if __name__ == "__main__":
    main()
