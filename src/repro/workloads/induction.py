"""Automatic abstraction-tree induction from the provenance itself.

The paper assumes abstraction trees come from ontologies or from the
analyst ("the user may also manually construct/augment the trees",
§2.2) — it never derives them from data. This module closes that gap:
greedy agglomerative clustering over the *mergeability* affinity of
:func:`repro.core.statistics.variable_cooccurrence` (pairs sharing many
residual contexts merge many monomials when grouped), producing a
binary-ish abstraction tree whose low cuts capture the cheapest
compressions.

Induced trees are a fallback, not a replacement: a semantic hierarchy
(quarters, plan families) guarantees *meaningful* uniform-assignment
groups; an induced tree only guarantees *compressible* ones. The
example and tests treat it accordingly — induced trees are validated
against the semantic trees on the paper's workloads.
"""

from __future__ import annotations

from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest
from repro.core.statistics import variable_cooccurrence
from repro.core.tree import AbstractionTree, TreeNode

__all__ = ["induce_tree", "induce_forest"]


def induce_tree(polynomials, variables=None, prefix="auto", min_affinity=1):
    """Build an abstraction tree over ``variables`` by affinity clustering.

    Repeatedly merges the cluster pair with the highest total
    co-occurrence affinity (ties: lexicographically smallest pair) until
    either no pair has affinity ≥ ``min_affinity`` — the leftovers
    attach directly under the root — or one cluster remains.

    :param polynomials: the provenance to induce from.
    :param variables: subset of variables to cover (default: all).
    :param prefix: label prefix for generated meta-variables.
    :returns: an :class:`AbstractionTree` with the given variables as
        leaves, or ``None`` if fewer than two variables are present.

    >>> from repro.core.parser import parse_set
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3 + 6*e*z"])
    >>> tree = induce_tree(polys, variables=["b1", "b2", "e"])
    >>> sorted(tree.leaves_under(tree.parent("b1")))  # b1,b2 cluster first
    ['b1', 'b2']
    """
    polynomials = ensure_set(polynomials)
    present = polynomials.variables
    if variables is None:
        pool = sorted(present)
    else:
        pool = sorted(set(variables) & present)
    if len(pool) < 2:
        return None

    affinity = variable_cooccurrence(polynomials, pool)

    # clusters: frozenset of variables -> its TreeNode.
    clusters = {frozenset([var]): TreeNode(var) for var in pool}

    def cluster_affinity(a, b):
        total = 0
        for u in a:
            for v in b:
                key = (u, v) if u < v else (v, u)
                total += affinity.get(key, 0)
        return total

    counter = 0
    while len(clusters) > 1:
        best = None
        names = sorted(clusters, key=lambda c: sorted(c))
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                score = cluster_affinity(a, b)
                rank = (-score, sorted(a), sorted(b))
                if best is None or rank < best[0]:
                    best = (rank, a, b, score)
        _, a, b, score = best
        if score < min_affinity:
            break
        node = TreeNode(f"{prefix}_{counter}", [clusters.pop(a), clusters.pop(b)])
        counter += 1
        clusters[a | b] = node

    children = [clusters[key] for key in sorted(clusters, key=lambda c: sorted(c))]
    if len(children) == 1 and not children[0].is_leaf:
        root = children[0]
        root.label = f"{prefix}_root"
        return AbstractionTree(root)
    return AbstractionTree(TreeNode(f"{prefix}_root", children))


def induce_forest(polynomials, prefix="auto", min_affinity=1):
    """Induce a compatible abstraction *forest* over all variables.

    A single tree over all variables is usually incompatible: two
    variables that co-occur in a monomial (the running example's ``p1``
    and ``m1``) may not share a tree (§2.2 allows at most one tree node
    per monomial). This function first partitions the variables into
    conflict-free pools — greedy coloring of the co-occurrence conflict
    graph, highest degree first — and then induces one tree per pool
    with ≥ 2 variables. On well-parameterized provenance the pools
    recover the paper's "different domains" (plans vs months,
    suppliers vs parts) automatically.

    >>> from repro.core.parser import parse_set
    >>> polys = parse_set(["2*p1*m1 + 3*p1*m3 + 4*f1*m1 + 5*f1*m3"])
    >>> forest = induce_forest(polys)
    >>> sorted(sorted(tree.leaf_labels) for tree in forest)
    [['f1', 'p1'], ['m1', 'm3']]
    """
    polynomials = ensure_set(polynomials)
    variables = sorted(polynomials.variables)
    conflicts = {var: set() for var in variables}
    for polynomial in polynomials:
        for monomial in polynomial.monomials:
            names = sorted(monomial.variables)
            for i, u in enumerate(names):
                for v in names[i + 1 :]:
                    conflicts[u].add(v)
                    conflicts[v].add(u)

    color = {}
    for var in sorted(variables, key=lambda v: (-len(conflicts[v]), v)):
        taken = {color[u] for u in conflicts[var] if u in color}
        assigned = 0
        while assigned in taken:
            assigned += 1
        color[var] = assigned

    pools = {}
    for var, assigned in color.items():
        pools.setdefault(assigned, []).append(var)

    trees = []
    for assigned in sorted(pools):
        pool = sorted(pools[assigned])
        if len(pool) < 2:
            continue  # a lone variable offers nothing to abstract
        tree = induce_tree(
            polynomials, variables=pool,
            prefix=f"{prefix}{assigned}", min_affinity=min_affinity,
        )
        if tree is not None:
            trees.append(tree)
    return AbstractionForest(trees)
