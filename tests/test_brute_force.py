"""Tests for the brute-force cut enumerator."""

import pytest

from repro.algorithms.brute_force import TooManyCutsError, brute_force_vvs
from repro.algorithms.result import InfeasibleBoundError
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree


@pytest.fixture
def instance():
    polys = parse_set(["2*a*x + 3*b*x + 4*c*y + 5*d*y"])
    tree = AbstractionTree.from_nested(
        ("r", [("g1", ["a", "b"]), ("g2", ["c", "d"])])
    )
    return polys, tree


class TestSearch:
    def test_finds_minimal_vl(self, instance):
        polys, tree = instance
        result = brute_force_vvs(polys, tree, bound=3)
        # Merging either g1 or g2 suffices (ML 1 each, VL 1).
        assert result.variable_loss == 1
        assert result.abstracted_size == 3

    def test_deterministic_tie_break(self, instance):
        polys, tree = instance
        a = brute_force_vvs(polys, tree, bound=3)
        b = brute_force_vvs(polys, tree, bound=3)
        assert a.vvs.labels == b.vvs.labels

    def test_exhausts_to_root(self, instance):
        polys, tree = instance
        result = brute_force_vvs(polys, tree, bound=2)
        assert result.vvs.labels == frozenset({"g1", "g2"})
        assert result.abstracted_size == 2

    def test_infeasible_raises_with_min_size(self, instance):
        polys, tree = instance
        with pytest.raises(InfeasibleBoundError) as excinfo:
            brute_force_vvs(polys, tree, bound=1)
        assert excinfo.value.min_achievable_size == 2

    def test_invalid_bound(self, instance):
        polys, tree = instance
        with pytest.raises(ValueError):
            brute_force_vvs(polys, tree, bound=0)

    def test_forest_input(self, ex13_polys, paper_forest):
        result = brute_force_vvs(ex13_polys, paper_forest, bound=4)
        assert result.abstracted_size <= 4

    def test_example8_infeasibility(self, ex13_polys, figure3_tree):
        """Example 8: with the months tree alone, B=3 is unreachable for P
        (maximal compression leaves 4 monomials on P1... the paper uses the
        single polynomial P; here both P1 and P2 leave 7)."""
        from repro.core.polynomial import PolynomialSet

        p1_only = PolynomialSet([ex13_polys[0]])
        with pytest.raises(InfeasibleBoundError) as excinfo:
            brute_force_vvs(p1_only, figure3_tree, bound=3)
        assert excinfo.value.min_achievable_size == 4

    def test_max_cuts_guard(self):
        leaves = [f"x{i}" for i in range(32)]
        polys = parse_set([" + ".join(f"2*{v}" for v in leaves)])
        from repro.workloads.trees import layered_tree

        tree = layered_tree(leaves, (16,))
        with pytest.raises(TooManyCutsError):
            brute_force_vvs(polys, tree, bound=16, max_cuts=1000)

    def test_max_cuts_none_disables_guard(self, instance):
        polys, tree = instance
        result = brute_force_vvs(polys, tree, bound=3, max_cuts=None)
        assert result.abstracted_size == 3
