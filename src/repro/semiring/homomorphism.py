"""Semiring homomorphisms: specializing provenance polynomials.

The factorization property of ``N[X]`` (Green et al.): any assignment
``X → K`` into a commutative semiring ``K`` extends uniquely to a
semiring homomorphism ``N[X] → K``. Concretely, a polynomial
``Σ cᵢ · Πⱼ xⱼ^eⱼ`` evaluates to ``⊕ᵢ (from_int(cᵢ) ⊗ ⊗ⱼ σ(xⱼ)^eⱼ)``.

This is the bridge between the abstraction framework (which manipulates
polynomials symbolically) and concrete hypothetical scenarios: Boolean
assignments answer tuple-deletion what-ifs, real assignments answer the
paper's price-change what-ifs, and so on — all from the *same* stored
provenance.
"""

from __future__ import annotations

from repro.core.polynomial import Polynomial, PolynomialSet

__all__ = ["evaluate_in", "Homomorphism"]


def evaluate_in(polynomial, semiring, assignment, default=None):
    """Evaluate ``polynomial`` in ``semiring`` under ``assignment``.

    :param assignment: mapping variable → semiring element.
    :param default: value for unassigned variables; defaults to
        ``semiring.one`` (the neutral "unchanged"/"present" choice).

    >>> from repro.core.parser import parse
    >>> from repro.semiring.standard import BOOLEAN, NATURAL
    >>> p = parse("x*y + 2*z")
    >>> evaluate_in(p, BOOLEAN, {"x": True, "y": False, "z": False})
    False
    >>> evaluate_in(p, NATURAL, {"x": 3, "y": 2, "z": 5})
    16
    """
    if default is None:
        default = semiring.one
    total = semiring.zero
    for monomial, coeff in polynomial.terms.items():
        if isinstance(coeff, float) and not coeff.is_integer():
            raise ValueError(
                f"coefficient {coeff} is not a natural number; generic "
                "semiring evaluation applies to N[X] provenance"
            )
        term = semiring.from_int(int(coeff))
        for var, exp in monomial.powers:
            value = assignment.get(var, default)
            term = semiring.times(term, semiring.power(value, exp))
        total = semiring.plus(total, term)
    return total


class Homomorphism:
    """A reusable ``N[X] → K`` homomorphism (fixed semiring + assignment).

    >>> from repro.core.parser import parse
    >>> from repro.semiring.standard import TROPICAL
    >>> h = Homomorphism(TROPICAL, {"x": 2.0, "y": 3.0})
    >>> h(parse("x*y + x"))
    2.0
    """

    __slots__ = ("semiring", "assignment", "default")

    def __init__(self, semiring, assignment, default=None):
        self.semiring = semiring
        self.assignment = dict(assignment)
        self.default = semiring.one if default is None else default

    def __call__(self, polynomials):
        if isinstance(polynomials, Polynomial):
            return evaluate_in(
                polynomials, self.semiring, self.assignment, self.default
            )
        if isinstance(polynomials, PolynomialSet):
            return [
                evaluate_in(p, self.semiring, self.assignment, self.default)
                for p in polynomials
            ]
        raise TypeError(f"expected Polynomial(Set), got {type(polynomials).__name__}")
