"""Provenance polynomials (§2.1 of the paper).

A *provenance polynomial* is a sum of monomials; each monomial is a
product of a numeric coefficient and indeterminates ("variables"), each
raised to a positive integer exponent. Polynomials arise here in two
settings (both supported, see ``repro.engine``):

1. semiring annotations of SPJU query results over tuple variables
   (Green et al.'s ``N[X]``), and
2. parameterized aggregate values, where the plus of the polynomial is
   the aggregate and variables scale chosen cells (the paper's running
   example).

The paper measures a polynomial ``P`` by

* its *size* ``|P|_M`` — the number of monomials, and
* its *granularity* ``|P|_V`` — the number of distinct variables,

and lifts both point-wise to (multi)sets of polynomials. This module
implements :class:`Monomial`, :class:`Polynomial`, and
:class:`PolynomialSet` with exactly those measures, plus the variable
substitution primitive that provenance abstraction is built on.

Representation: variable names are interned through
:data:`repro.core.interning.VARIABLES`; each monomial's canonical form
is its ``key`` — a tuple of ``(var_id, exponent)`` pairs sorted by id.
All hashing, equality, multiplication and substitution run on keys;
the string-facing ``powers`` view (sorted by variable *name*, as the
parser and printers expect) is derived lazily. Polynomials are treated
as immutable once built, so their variable sets are computed once and
cached.
"""

from __future__ import annotations

import numbers

from repro.core.interning import VARIABLES

__all__ = ["Monomial", "Polynomial", "PolynomialSet"]


class Monomial:
    """An immutable product of variables raised to positive exponents.

    The coefficient is *not* part of the monomial — polynomials map
    monomials to coefficients, mirroring the paper's implementation note
    (§4.1: "Python's dictionaries for the polynomials").

    ``powers`` is a sorted tuple of ``(variable, exponent)`` pairs with
    ``exponent >= 1``; variables are strings. Internally the monomial is
    identified by ``key``, the same pairs over interned variable ids.

    >>> m = Monomial.of(("x", 2), "y")
    >>> str(m)
    'x^2*y'
    >>> m.degree
    3
    >>> m.exponent("x")
    2
    """

    __slots__ = ("key", "_powers", "_exps", "_hash")

    #: The empty monomial (the constant term's monomial).
    ONE: "Monomial"

    def __init__(self, powers=()):
        items = tuple(sorted((str(v), int(e)) for v, e in powers))
        for var, exp in items:
            if exp < 1:
                raise ValueError(f"exponent of {var!r} must be >= 1, got {exp}")
        seen = set()
        for var, _ in items:
            if var in seen:
                raise ValueError(f"duplicate variable {var!r}; use Monomial.of")
            seen.add(var)
        key = tuple(sorted((VARIABLES.intern(var), exp) for var, exp in items))
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_powers", items)
        object.__setattr__(self, "_exps", None)
        object.__setattr__(self, "_hash", hash(key))

    @classmethod
    def _from_key(cls, key):
        """Fast path: build from an id-sorted, validated key (internal)."""
        self = object.__new__(cls)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_powers", None)
        object.__setattr__(self, "_exps", None)
        object.__setattr__(self, "_hash", hash(key))
        return self

    def __setattr__(self, name, value):
        raise AttributeError("Monomial is immutable")

    @classmethod
    def of(cls, *factors):
        """Build a monomial from variables and ``(variable, exponent)`` pairs.

        Repeated variables multiply (exponents add):

        >>> str(Monomial.of("x", "y", "x"))
        'x^2*y'
        """
        acc = {}
        for factor in factors:
            if isinstance(factor, tuple):
                var, exp = factor
            else:
                var, exp = factor, 1
            acc[str(var)] = acc.get(str(var), 0) + int(exp)
        return cls(acc.items())

    @property
    def powers(self):
        """Sorted ``(variable, exponent)`` pairs (the string-facing view)."""
        powers = self._powers
        if powers is None:
            name = VARIABLES.name
            powers = tuple(sorted((name(vid), exp) for vid, exp in self.key))
            object.__setattr__(self, "_powers", powers)
        return powers

    def _exponents(self):
        """Cached ``{var_id: exponent}`` for O(1) membership/exponent."""
        exps = self._exps
        if exps is None:
            exps = dict(self.key)
            object.__setattr__(self, "_exps", exps)
        return exps

    @property
    def variables(self):
        """The set of variables occurring in this monomial."""
        name = VARIABLES.name
        return frozenset(name(vid) for vid, _ in self.key)

    @property
    def degree(self):
        """Total degree (sum of exponents)."""
        return sum(exp for _, exp in self.key)

    def exponent(self, variable):
        """The exponent of ``variable`` (0 if absent)."""
        vid = VARIABLES.lookup(variable)
        if vid is None:
            return 0
        return self._exponents().get(vid, 0)

    def __contains__(self, variable):
        vid = VARIABLES.lookup(variable)
        return vid is not None and vid in self._exponents()

    def __iter__(self):
        """Iterate over ``(variable, exponent)`` pairs in sorted order."""
        return iter(self.powers)

    def __len__(self):
        return len(self.key)

    def __mul__(self, other):
        if not isinstance(other, Monomial):
            return NotImplemented
        acc = dict(self.key)
        for vid, exp in other.key:
            acc[vid] = acc.get(vid, 0) + exp
        return Monomial._from_key(tuple(sorted(acc.items())))

    def substitute(self, mapping):
        """Rename variables via ``mapping``; unmapped variables stay intact.

        If two variables map to the same target their exponents combine:

        >>> str(Monomial.of("a", "b").substitute({"a": "g", "b": "g"}))
        'g^2'
        """
        return self.substitute_ids(VARIABLES.intern_mapping(mapping))

    def substitute_ids(self, id_mapping):
        """:meth:`substitute` over an interned ``{var_id: var_id}`` map."""
        acc = {}
        for vid, exp in self.key:
            target = id_mapping.get(vid, vid)
            acc[target] = acc.get(target, 0) + exp
        return Monomial._from_key(tuple(sorted(acc.items())))

    def evaluate(self, assignment, default=1.0):
        """The numeric value of the monomial under ``assignment``.

        Variables absent from ``assignment`` take ``default`` — the
        neutral "scenario leaves this parameter unchanged" semantics.
        The accumulator starts from the integer 1, so exact coefficient
        types (``fractions.Fraction``) survive evaluation unharmed.
        """
        value = 1
        for var, exp in self.powers:
            value *= assignment.get(var, default) ** exp
        return value

    def __reduce__(self):
        """Pickle by the string-facing powers (ids are process-local)."""
        return (Monomial, (self.powers,))

    def __eq__(self, other):
        return isinstance(other, Monomial) and self.key == other.key

    def __lt__(self, other):
        if not isinstance(other, Monomial):
            return NotImplemented
        return self.powers < other.powers

    def __hash__(self):
        return self._hash

    def __str__(self):
        if not self.key:
            return "1"
        parts = []
        for var, exp in self.powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)

    def __repr__(self):
        return f"Monomial({self.powers!r})"


Monomial.ONE = Monomial()


class Polynomial:
    """A provenance polynomial: a finite map from monomials to coefficients.

    Coefficients may be any ``numbers.Number`` — ``int``, ``float`` or
    ``fractions.Fraction``. Zero-coefficient terms are dropped on
    construction, so ``|P|_M`` is always the count of *surviving*
    monomials.

    >>> p = Polynomial({Monomial.of("x"): 2, Monomial.of("y"): 3})
    >>> p.num_monomials, p.num_variables
    (2, 2)
    """

    __slots__ = ("terms", "_vids")

    def __init__(self, terms=None):
        acc = {}
        if terms:
            items = terms.items() if isinstance(terms, dict) else terms
            for monomial, coeff in items:
                if not isinstance(monomial, Monomial):
                    raise TypeError(f"expected Monomial, got {type(monomial).__name__}")
                if coeff == 0:
                    continue
                new = acc.get(monomial, 0) + coeff
                if new == 0:
                    acc.pop(monomial, None)
                else:
                    acc[monomial] = new
        self.terms = acc
        self._vids = None

    @classmethod
    def _raw(cls, terms):
        """Adopt a ready ``{Monomial: coeff}`` dict (internal fast path)."""
        result = cls()
        result.terms = terms
        return result

    @classmethod
    def zero(cls):
        """The empty polynomial (0)."""
        return cls()

    @classmethod
    def constant(cls, value):
        """A constant polynomial ``value``."""
        return cls({Monomial.ONE: value})

    @classmethod
    def variable(cls, name, coefficient=1):
        """The polynomial ``coefficient * name``."""
        return cls({Monomial.of(name): coefficient})

    @classmethod
    def from_terms(cls, terms):
        """Build from an iterable of ``(coefficient, Monomial)`` pairs."""
        return cls((monomial, coeff) for coeff, monomial in terms)

    # ---------------------------------------------------------------- sizes

    @property
    def monomials(self):
        """``M(P)`` — the monomials of this polynomial (a view)."""
        return self.terms.keys()

    @property
    def num_monomials(self):
        """``|P|_M`` — the number of monomials."""
        return len(self.terms)

    def variable_ids(self):
        """``V(P)`` as interned ids (cached — polynomials are immutable)."""
        vids = self._vids
        if vids is None:
            out = set()
            for monomial in self.terms:
                for vid, _ in monomial.key:
                    out.add(vid)
            vids = frozenset(out)
            self._vids = vids
        return vids

    @property
    def variables(self):
        """``V(P)`` — the set of variables occurring in ``P``."""
        name = VARIABLES.name
        return {name(vid) for vid in self.variable_ids()}

    @property
    def num_variables(self):
        """``|P|_V`` — the granularity (number of distinct variables)."""
        return len(self.variable_ids())

    def coefficient(self, monomial):
        """The coefficient of ``monomial`` (0 if absent)."""
        return self.terms.get(monomial, 0)

    # ----------------------------------------------------------- arithmetic

    @staticmethod
    def _lift(other):
        """Coerce a scalar operand to a Polynomial (or return it as-is)."""
        if isinstance(other, numbers.Number):
            return Polynomial.constant(other)
        return other

    def __add__(self, other):
        other = self._lift(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        acc = dict(self.terms)
        for monomial, coeff in other.terms.items():
            new = acc.get(monomial, 0) + coeff
            if new == 0:
                acc.pop(monomial, None)
            else:
                acc[monomial] = new
        return Polynomial._raw(acc)

    __radd__ = __add__

    def __neg__(self):
        return Polynomial._raw({m: -c for m, c in self.terms.items()})

    def __sub__(self, other):
        other = self._lift(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other):
        other = self._lift(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return other + (-self)

    def __mul__(self, other):
        if isinstance(other, Monomial):
            return Polynomial._raw({m * other: c for m, c in self.terms.items()})
        if isinstance(other, Polynomial):
            acc = {}
            for m1, c1 in self.terms.items():
                for m2, c2 in other.terms.items():
                    m = m1 * m2
                    new = acc.get(m, 0) + c1 * c2
                    if new == 0:
                        acc.pop(m, None)
                    else:
                        acc[m] = new
            return Polynomial._raw(acc)
        if isinstance(other, numbers.Number):
            if other == 0:
                return Polynomial.zero()
            return Polynomial._raw({m: c * other for m, c in self.terms.items()})
        return NotImplemented

    __rmul__ = __mul__

    # --------------------------------------------------------- provenance ops

    def substitute(self, mapping):
        """``P↓S`` workhorse: rename variables, merging equal monomials.

        Coefficients of monomials that become identical are summed —
        this is exactly how abstraction shrinks ``|P|_M``.

        >>> p = Polynomial.from_terms(
        ...     [(2, Monomial.of("m1", "x")), (3, Monomial.of("m3", "x"))])
        >>> str(p.substitute({"m1": "q1", "m3": "q1"}))
        '5*q1*x'
        """
        return self.substitute_ids(VARIABLES.intern_mapping(mapping))

    def substitute_ids(self, id_mapping):
        """:meth:`substitute` over an interned ``{var_id: var_id}`` map.

        Monomials untouched by the mapping are reused as-is; rewritten
        keys are deduplicated so each distinct target monomial is built
        once.
        """
        if not id_mapping:
            return self
        mapped = set(id_mapping)
        if mapped.isdisjoint(self.variable_ids()):
            return self
        acc = {}
        rebuilt = {}
        for monomial, coeff in self.terms.items():
            key = monomial.key
            if mapped.isdisjoint(vid for vid, _ in key):
                new_monomial = monomial
            else:
                key_acc = {}
                for vid, exp in key:
                    target = id_mapping.get(vid, vid)
                    key_acc[target] = key_acc.get(target, 0) + exp
                new_key = tuple(sorted(key_acc.items()))
                new_monomial = rebuilt.get(new_key)
                if new_monomial is None:
                    new_monomial = Monomial._from_key(new_key)
                    rebuilt[new_key] = new_monomial
            new = acc.get(new_monomial, 0) + coeff
            if new == 0:
                acc.pop(new_monomial, None)
            else:
                acc[new_monomial] = new
        return Polynomial._raw(acc)

    def evaluate(self, assignment, default=1.0):
        """Value of ``P`` under a (hypothetical-scenario) assignment.

        Unassigned variables default to ``default`` (1.0 = "unchanged").
        The accumulator starts from the integer 0, so exact coefficient
        types (``fractions.Fraction``, ``int``) evaluate exactly instead
        of being forced through floats.
        """
        total = 0
        for monomial, coeff in self.terms.items():
            total += coeff * monomial.evaluate(assignment, default)
        return total

    def restricted_to(self, variables):
        """The sub-polynomial of monomials that only use ``variables``."""
        lookup = VARIABLES.lookup
        allowed = {vid for vid in map(lookup, variables) if vid is not None}
        return Polynomial(
            (m, c)
            for m, c in self.terms.items()
            if all(vid in allowed for vid, _ in m.key)
        )

    # ------------------------------------------------------------- equality

    def __reduce__(self):
        """Pickle the terms; the id cache is process-local and rebuilt."""
        return (Polynomial, (self.terms,))

    def __eq__(self, other):
        return isinstance(other, Polynomial) and self.terms == other.terms

    def __hash__(self):
        return hash(frozenset(self.terms.items()))

    def almost_equal(self, other, tolerance=1e-9):
        """Structural equality with per-coefficient float ``tolerance``."""
        if set(self.terms) != set(other.terms):
            return False
        return all(
            abs(self.terms[m] - other.terms[m]) <= tolerance for m in self.terms
        )

    def __iter__(self):
        """Iterate over ``(coefficient, Monomial)`` pairs, sorted by monomial."""
        for monomial in sorted(self.terms):
            yield self.terms[monomial], monomial

    def __len__(self):
        return len(self.terms)

    def __bool__(self):
        return bool(self.terms)

    def __str__(self):
        if not self.terms:
            return "0"
        chunks = []
        for coeff, monomial in self:
            sign = "-" if coeff < 0 else "+"
            magnitude = abs(coeff)
            if not monomial.key:
                body = f"{magnitude}"
            elif magnitude == 1:
                body = str(monomial)
            else:
                body = f"{magnitude}*{monomial}"
            if not chunks:
                chunks.append(body if sign == "+" else f"-{body}")
            else:
                chunks.append(f"{sign} {body}")
        return " ".join(chunks)

    def __repr__(self):
        return f"Polynomial.parse({str(self)!r})"


class PolynomialSet:
    """A multiset of polynomials — the provenance of a whole query result.

    The paper's measures lift point-wise: ``|P|_M`` sums monomial counts
    and ``V(P)`` / ``|P|_V`` union variables. Both are cached; the cache
    is invalidated by :meth:`append` and *repaired* (not dropped) by
    :meth:`extend`, the streaming-provenance mutator.

    >>> ps = PolynomialSet([Polynomial.variable("x"), Polynomial.variable("x")])
    >>> ps.num_monomials, ps.num_variables
    (2, 1)
    """

    __slots__ = ("polynomials", "_vids", "_compiled", "_columnar")

    def __init__(self, polynomials=None):
        self.polynomials = list(polynomials) if polynomials else []
        for p in self.polynomials:
            if not isinstance(p, Polynomial):
                raise TypeError(f"expected Polynomial, got {type(p).__name__}")
        self._vids = None
        self._compiled = None
        self._columnar = None

    def append(self, polynomial):
        """Add one polynomial to the multiset."""
        if not isinstance(polynomial, Polynomial):
            raise TypeError(f"expected Polynomial, got {type(polynomial).__name__}")
        self.polynomials.append(polynomial)
        self._vids = None
        self._compiled = None
        self._columnar = None

    def extend(self, polynomials):
        """Append many polynomials, *repairing* the caches in place.

        The incremental counterpart of :meth:`append`: instead of
        dropping the cached variable union, columnar view and compiled
        evaluator, each one (when already built) is extended by exactly
        the appended polynomials —
        :meth:`ColumnarMultiset.extend
        <repro.core.columnar.ColumnarMultiset.extend>` appends factor
        rows to the CSR arrays and
        :meth:`CompiledPolynomialSet.extend
        <repro.core.batch.CompiledPolynomialSet.extend>` grows the batch
        matrix by trailing rows/layers. Unbuilt caches stay unbuilt.
        """
        added = list(polynomials)
        for p in added:
            if not isinstance(p, Polynomial):
                raise TypeError(
                    f"expected Polynomial, got {type(p).__name__}"
                )
        if not added:
            return
        self.polynomials.extend(added)
        if self._vids is not None:
            out = set(self._vids)
            for p in added:
                out.update(p.variable_ids())
            self._vids = frozenset(out)
        if self._columnar is not None:
            self._columnar.extend(added)
        if self._compiled is not None:
            self._compiled.extend(added)

    def __reduce__(self):
        """Pickle the polynomials; compiled/columnar caches are rebuilt."""
        return (PolynomialSet, (self.polynomials,))

    @property
    def num_monomials(self):
        """``|P|_M`` summed over the multiset."""
        return sum(p.num_monomials for p in self.polynomials)

    def variable_ids(self):
        """``V(P)`` as interned ids (cached until :meth:`append`)."""
        vids = self._vids
        if vids is None:
            out = set()
            for p in self.polynomials:
                out.update(p.variable_ids())
            vids = frozenset(out)
            self._vids = vids
        return vids

    @property
    def variables(self):
        """``V(P)`` — union of per-polynomial variable sets."""
        name = VARIABLES.name
        return {name(vid) for vid in self.variable_ids()}

    @property
    def num_variables(self):
        """``|P|_V`` — number of distinct variables across the multiset."""
        return len(self.variable_ids())

    def substitute(self, mapping):
        """Point-wise substitution (``P↓S`` lifted to the multiset)."""
        id_mapping = VARIABLES.intern_mapping(mapping)
        return PolynomialSet(p.substitute_ids(id_mapping) for p in self.polynomials)

    def evaluate(self, assignment, default=1.0):
        """Point-wise valuation; returns one value per polynomial."""
        return [p.evaluate(assignment, default) for p in self.polynomials]

    def columnar(self):
        """The columnar (CSR) factor view of this set (built once, cached).

        The substrate of the vectorized compression core — see
        :class:`repro.core.columnar.ColumnarMultiset`. The batch
        evaluator is compiled from these arrays, so building both costs
        one extraction pass.
        """
        columnar = self._columnar
        if columnar is None:
            from repro.core.columnar import ColumnarMultiset

            columnar = ColumnarMultiset(self)
            self._columnar = columnar
        return columnar

    def compiled(self):
        """The NumPy batch evaluator for this set (built once, cached)."""
        compiled = self._compiled
        if compiled is None:
            from repro.core.batch import CompiledPolynomialSet

            compiled = CompiledPolynomialSet(self)
            self._compiled = compiled
        return compiled

    def evaluate_batch(self, assignments, default=1.0, engine="auto"):
        """Valuate many scenarios at once (vectorized over NumPy).

        :param assignments: an iterable of assignments — plain dicts,
            :class:`~repro.core.valuation.Valuation` objects (their own
            ``default`` is honoured), Scenario-like objects (a callable
            ``valuation(default)`` method), or anything with an
            ``assignment`` attribute (see
            :meth:`Valuation.coerce <repro.core.valuation.Valuation.coerce>`).
        :param default: value of unassigned variables for plain dicts.
        :param engine: ``"dense"`` (full-matrix), ``"delta"`` (baseline
            plus sparse per-scenario patches — see
            :meth:`CompiledPolynomialSet.evaluate_delta
            <repro.core.batch.CompiledPolynomialSet.evaluate_delta>`),
            or ``"auto"`` (the default: delta for sparse scenario
            families). Answers are bit-identical either way.
        :returns: a ``(num_assignments, len(self))`` ``numpy.ndarray``;
            row ``i`` equals ``self.evaluate(assignments[i])`` up to
            float rounding (exact coefficient types are degraded to
            float — use :meth:`evaluate` for exact arithmetic).

        Compilation happens once per set and is cached, so the cost of
        building the coefficient/exponent arrays amortizes across
        scenario suites — the paper's Figure 10 workload shape.
        """
        return self.compiled().evaluate(assignments, default, engine)

    def __iter__(self):
        return iter(self.polynomials)

    def __len__(self):
        return len(self.polynomials)

    def __getitem__(self, index):
        return self.polynomials[index]

    def __eq__(self, other):
        return (
            isinstance(other, PolynomialSet)
            and self.polynomials == other.polynomials
        )

    def almost_equal(self, other, tolerance=1e-9):
        """Point-wise :meth:`Polynomial.almost_equal`."""
        if len(self) != len(other):
            return False
        return all(
            a.almost_equal(b, tolerance) for a, b in zip(self, other, strict=True)
        )

    def __repr__(self):
        return f"PolynomialSet({self.polynomials!r})"
