"""Quickstart: the whole pipeline through the session facade.

Query → compress → ask in a few lines: capture provenance by running
the paper's §1 revenue query through the engine, compress it under a
budget, and answer hypothetical scenarios — exactly when they are
uniform on the chosen cut, approximately otherwise.

Run:  python examples/quickstart.py
"""

from repro import ProvenanceSession, Scenario
from repro.workloads.telephony import (
    figure1_database,
    figure1_plan_variables,
    months_tree,
    plans_tree,
)


def main():
    # 1. Capture: the running-example query (§1) over the Figure 1
    #    database, placing plan/month scenario variables on each cell.
    cust, calls, plans = figure1_database()
    plan_vars = figure1_plan_variables()
    session = ProvenanceSession.from_query(
        "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
        "FROM Calls, Cust, Plans "
        "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
        "AND Calls.Mo = Plans.Mo GROUP BY Cust.Zip",
        {"Cust": cust, "Calls": calls, "Plans": plans},
        params=lambda row: [plan_vars[row["Cust.Plan"]], f"m{row['Calls.Mo']}"],
        forest=[plans_tree(), months_tree()],
    )
    print(f"captured: {session!r}")

    # 2. Compress under a monomial budget. algorithm="auto" picks the
    #    optimal PTIME DP for a single tree, the greedy for forests.
    artifact = session.compress(bound=6, algorithm="auto")
    print(f"compressed with {artifact.algorithm!r}: "
          f"{artifact.original_size} -> {artifact.abstracted_size} monomials, "
          f"cut {sorted(artifact.vvs.labels)}")

    # 3. Ask what-ifs. Scenarios uniform on the cut's groups are
    #    answered EXACTLY (answer.exact is True); others fall back to
    #    the group-mean approximate lift.
    q1_discount = Scenario.uniform("Q1 prices -20%", ["m1", "m2", "m3"], 0.8)
    jan_only = Scenario("January -20%", {"m1": 0.8})
    for answer in artifact.ask_many([q1_discount, jan_only]):
        mode = "exact" if answer.exact else "approximate"
        values = ", ".join(f"{v:.2f}" for v in answer.values)
        print(f"  {answer.name}: [{values}] ({mode})")

    # 4. Artifacts are files: save, ship, reload, ask again.
    path = "/tmp/quickstart_artifact.json"
    artifact.save(path)
    from repro import CompressedProvenance

    reloaded = CompressedProvenance.load(path)
    assert reloaded.ask(q1_discount) == artifact.ask(q1_discount)
    print(f"artifact round-tripped through {path}")


if __name__ == "__main__":
    main()
