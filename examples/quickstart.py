"""Quickstart: compress a provenance polynomial with an abstraction tree.

Run:  python examples/quickstart.py
"""

from repro import AbstractionForest, AbstractionTree, parse_set
from repro.algorithms import greedy_vvs, optimal_vvs
from repro.core import Valuation


def main():
    # 1. Provenance: two revenue polynomials (the paper's Example 13).
    provenance = parse_set(
        [
            "220.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "
            "75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3",
            "77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + "
            "69.7*b2*m1 + 100.65*b2*m3",
        ]
    )
    print(f"provenance: {len(provenance)} polynomials, "
          f"{provenance.num_monomials} monomials, "
          f"{provenance.num_variables} variables")

    # 2. Abstraction trees: which variables MAY be merged (Figure 2 + 3).
    plans = AbstractionTree.from_nested(
        ("Plans", [
            ("Standard", ["p1", "p2"]),
            ("Special", [("Y", ["y1", "y2", "y3"]), ("F", ["f1", "f2"]), "v"]),
            ("Business", [("SB", ["b1", "b2"]), "e"]),
        ])
    )
    months = AbstractionTree.from_nested(
        ("Year", [("q1", ["m1", "m2", "m3"]), ("q2", ["m4", "m5", "m6"])])
    )

    # 3a. Single tree -> Algorithm 1 finds the OPTIMAL cut in PTIME.
    result = optimal_vvs(provenance, plans, bound=9)
    print(f"\noptimal single-tree abstraction for bound 9: {sorted(result.vvs.labels)}")
    print(f"  size {provenance.num_monomials} -> {result.abstracted_size} "
          f"monomials, lost {result.variable_loss} variables")

    # 3b. Multiple trees -> NP-hard; Algorithm 2 is the greedy heuristic.
    forest = AbstractionForest([plans, months])
    result = greedy_vvs(provenance, forest, bound=4)
    print(f"\ngreedy forest abstraction for bound 4: {sorted(result.vvs.labels)}")
    for step in result.trace:
        print(f"  chose {step.chosen}: ML={step.cumulative_ml}, "
              f"VL={step.cumulative_vl}")

    # 4. Hypothetical reasoning on the compressed provenance.
    compact = result.apply(provenance)
    print(f"\ncompressed provenance: {compact.num_monomials} monomials")
    baseline = Valuation({}).evaluate(compact)
    what_if = Valuation({"q1": 0.8}).evaluate(compact)  # Q1 prices -20%
    for zipcode, before, after in zip(["10001", "10002"], baseline, what_if):
        print(f"  zip {zipcode}: revenue {before:9.2f} -> {after:9.2f} "
              "(Q1 prices cut 20%)")


if __name__ == "__main__":
    main()
