"""``N[X]`` — provenance polynomials as the universal semiring.

The free commutative semiring over the variable set ``X``: elements are
:class:`~repro.core.polynomial.Polynomial` values with natural-number
coefficients; ``⊕``/``⊗`` are polynomial addition and multiplication.
Green et al. (the paper's [36], and [35] for the hierarchy) show this is
the most informative annotation domain — the engine in
:mod:`repro.engine` annotates with it by default, producing exactly the
provenance polynomials the abstraction framework consumes.
"""

from __future__ import annotations

from repro.core.polynomial import Monomial, Polynomial
from repro.semiring.base import Semiring

__all__ = ["PolynomialSemiring", "PROVENANCE"]


class PolynomialSemiring(Semiring):
    """The free semiring ``N[X]`` over variable annotations."""

    name = "N[X]"
    zero = Polynomial.zero()
    one = Polynomial.constant(1)

    def plus(self, a, b):
        return a + b

    def times(self, a, b):
        return a * b

    def from_int(self, n):
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        return Polynomial.constant(n) if n else Polynomial.zero()

    def is_zero(self, value):
        return not value

    @staticmethod
    def variable(name):
        """The generator ``x ∈ X`` as an annotation."""
        return Polynomial.variable(name)

    @staticmethod
    def monomial(*factors):
        """Annotation ``x·y·…`` from variable names/(name, exp) pairs."""
        return Polynomial({Monomial.of(*factors): 1})


PROVENANCE = PolynomialSemiring()
