"""Vertex cover — the source problem of the Appendix A reduction.

Definition 27: ``V' ⊆ V`` covers ``G`` when every edge has an endpoint
in ``V'``. Deciding existence of a size-``k`` cover is the textbook
NP-complete problem (Garey & Johnson, the paper's [28]).
"""

from __future__ import annotations

from itertools import combinations

from repro.util.rng import derive_rng

__all__ = ["Graph", "is_vertex_cover", "has_vertex_cover", "minimum_vertex_cover",
           "random_graph"]


class Graph:
    """A simple undirected graph with vertices ``0..n-1``.

    Self-loops are rejected (the reduction's Theorem 28 precondition).

    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> g.degree(1)
    2
    """

    __slots__ = ("num_vertices", "edges")

    def __init__(self, num_vertices, edges):
        if num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        self.num_vertices = num_vertices
        normalized = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self loop on vertex {u}")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) out of range")
            normalized.add((min(u, v), max(u, v)))
        self.edges = sorted(normalized)

    @property
    def vertices(self):
        return range(self.num_vertices)

    def degree(self, vertex):
        return sum(1 for u, v in self.edges if vertex in (u, v))

    def __repr__(self):
        return f"Graph({self.num_vertices}, {len(self.edges)} edges)"


def is_vertex_cover(graph, cover):
    """Does ``cover`` touch every edge?"""
    cover = set(cover)
    return all(u in cover or v in cover for u, v in graph.edges)


def has_vertex_cover(graph, k):
    """Exhaustively decide a size-``k`` cover (small graphs only).

    >>> has_vertex_cover(Graph(3, [(0, 1), (1, 2)]), 1)
    True
    """
    if k >= graph.num_vertices:
        return True
    for candidate in combinations(range(graph.num_vertices), k):
        if is_vertex_cover(graph, candidate):
            return True
    return False


def minimum_vertex_cover(graph):
    """The smallest cover, by exhaustive search."""
    for k in range(graph.num_vertices + 1):
        for candidate in combinations(range(graph.num_vertices), k):
            if is_vertex_cover(graph, candidate):
                return set(candidate)
    return set(graph.vertices)


def random_graph(num_vertices, edge_probability=0.5, seed=0):
    """An Erdős–Rényi graph with at least one edge (reduction precondition)."""
    rng = derive_rng(seed, "random_graph")
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if rng.random() < edge_probability
    ]
    if not edges and num_vertices >= 2:
        edges = [(0, 1)]
    return Graph(num_vertices, edges)
