"""Property-based tests (hypothesis) for the core provenance model."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.abstraction import LossIndex, abstract, abstract_counts
from repro.core.forest import AbstractionForest
from repro.core.parser import parse
from repro.core.polynomial import Monomial, Polynomial
from repro.core.serialize import dumps, loads
from repro.core.valuation import Valuation
from repro.workloads.random_polys import random_compatible_instance

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

variable_names = st.sampled_from(
    [f"v{i}" for i in range(6)] + [f"w{i}" for i in range(3)]
)


@st.composite
def monomials(draw):
    pairs = draw(
        st.dictionaries(variable_names, st.integers(1, 3), max_size=4)
    )
    return Monomial(pairs.items())


@st.composite
def polynomials(draw):
    terms = draw(
        st.dictionaries(monomials(), st.integers(-50, 50), min_size=0, max_size=8)
    )
    return Polynomial(terms)


@st.composite
def instances(draw):
    """A (PolynomialSet, AbstractionForest) pair, compatible by construction."""
    seed = draw(st.integers(0, 10_000))
    num_trees = draw(st.integers(1, 3))
    leaves = draw(st.integers(2, 6))
    polys = draw(st.integers(1, 4))
    monomials_per = draw(st.integers(1, 10))
    return random_compatible_instance(
        seed=seed,
        num_trees=num_trees,
        leaves_per_tree=leaves,
        num_polynomials=polys,
        monomials_per_polynomial=monomials_per,
    )


# ---------------------------------------------------------------------------
# Polynomial algebra properties
# ---------------------------------------------------------------------------


class TestPolynomialAlgebra:
    @given(polynomials(), polynomials())
    def test_addition_commutes(self, p, q):
        assert p + q == q + p

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associates(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials())
    def test_zero_is_identity(self, p):
        assert p + Polynomial.zero() == p

    @given(polynomials())
    def test_subtraction_cancels(self, p):
        assert (p - p).num_monomials == 0

    @given(polynomials(), polynomials())
    def test_multiplication_commutes(self, p, q):
        assert p * q == q * p

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=30)
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    def test_one_is_multiplicative_identity(self, p):
        assert p * Polynomial.constant(1) == p

    @given(polynomials(), st.dictionaries(variable_names, st.floats(0.1, 2.0)))
    def test_evaluation_is_additive(self, p, assignment):
        q = parse("3*v0 + w0")
        total = (p + q).evaluate(assignment)
        assert abs(total - (p.evaluate(assignment) + q.evaluate(assignment))) < 1e-6

    @given(polynomials())
    def test_str_parse_roundtrip(self, p):
        if any(isinstance(c, float) for c in p.terms.values()):
            return  # float formatting round-trips are tested elsewhere
        assert parse(str(p)) == p or not p

    @given(polynomials())
    def test_serialize_roundtrip(self, p):
        assert loads(dumps(p)) == p


# ---------------------------------------------------------------------------
# Substitution / abstraction properties
# ---------------------------------------------------------------------------


class TestSubstitutionProperties:
    @given(polynomials(), st.dictionaries(variable_names, variable_names))
    def test_substitution_never_grows(self, p, mapping):
        q = p.substitute(mapping)
        assert q.num_monomials <= p.num_monomials

    @given(
        polynomials(),
        st.dictionaries(variable_names, variable_names),
        st.dictionaries(variable_names, st.floats(0.5, 2.0)),
    )
    def test_substitution_respects_pullback(self, p, mapping, target_values):
        """eval(P[σ_rename], σ) == eval(P, σ ∘ rename) — substitution is
        precomposition of valuations."""
        pullback = {
            var: target_values.get(mapping.get(var, var), 1.0)
            for var in p.variables
        }
        q = p.substitute(mapping)
        expected = p.evaluate(pullback)
        actual = q.evaluate(target_values)
        assert abs(actual - expected) <= 1e-6 * (1 + abs(expected))


class TestAbstractionProperties:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_every_cut_shrinks_or_preserves(self, instance):
        polys, forest = instance
        assume(forest.count_cuts() <= 200)
        for vvs in forest.iter_cuts():
            size, granularity = abstract_counts(polys, vvs.mapping())
            assert size <= polys.num_monomials
            assert granularity <= polys.num_variables
            assert size >= len([p for p in polys if p.num_monomials])

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_counts_match_materialization(self, instance):
        polys, forest = instance
        assume(forest.count_cuts() <= 200)
        for vvs in forest.iter_cuts():
            materialized = abstract(polys, vvs)
            assert abstract_counts(polys, vvs.mapping()) == (
                materialized.num_monomials,
                materialized.num_variables,
            )

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_single_tree_loss_additivity(self, instance):
        polys, forest = instance
        assume(forest.count_cuts() <= 200)
        for tree in forest:
            index = LossIndex(polys, tree)
            single = AbstractionForest([tree])
            for vvs in single.iter_cuts():
                size, granularity = abstract_counts(polys, vvs.mapping())
                assert index.ml_of_cut(vvs.labels) == polys.num_monomials - size
                assert index.vl_of_cut(vvs.labels) == (
                    polys.num_variables - granularity
                )

    @given(instances(), st.floats(0.25, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_uniform_valuation_lifting_is_exact(self, instance, value):
        """THE semantic guarantee: group-uniform scenarios survive abstraction."""
        polys, forest = instance
        assume(forest.count_cuts() <= 200)
        for vvs in forest.iter_cuts():
            scenario = Valuation(
                {leaf: value for label in vvs.labels for leaf in vvs.group(label)}
            )
            lifted = scenario.lift(vvs)
            abstracted = abstract(polys, vvs)
            for raw, compact in zip(polys, abstracted, strict=True):
                expected = raw.evaluate(scenario.assignment)
                actual = compact.evaluate(lifted.assignment)
                assert abs(actual - expected) <= 1e-6 * (1 + abs(expected))

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_root_cut_is_coarsest(self, instance):
        """No cut compresses below the all-roots cut (single-tree trees)."""
        polys, forest = instance
        assume(forest.count_cuts() <= 200)
        root_size, _ = abstract_counts(polys, forest.root_vvs().mapping())
        for vvs in forest.iter_cuts():
            size, _ = abstract_counts(polys, vvs.mapping())
            assert size >= root_size
