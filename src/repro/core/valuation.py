"""Valuations: assigning values to provenance variables (§1, §2.1).

A hypothetical scenario is applied by valuating the variables of a
provenance polynomial and computing the resulting number. The central
semantic fact about abstraction (tested property): if a valuation is
*uniform on the groups* of a VVS — every leaf below a chosen node gets
the same value — then valuating ``P↓S`` under the lifted valuation
yields exactly the same result as valuating ``P``. Scenarios that are
not group-uniform are the "loss of accuracy" the paper trades for size.
"""

from __future__ import annotations

from repro.core.polynomial import Polynomial, PolynomialSet
from repro.errors import ReproError

__all__ = ["Valuation", "NonUniformError"]


class NonUniformError(ReproError, ValueError):
    """Raised when lifting a valuation that is not uniform on a VVS."""


class Valuation:
    """A (partial) assignment of numeric values to variables.

    Unassigned variables default to ``default`` (1.0, i.e., a
    multiplicative scenario that leaves the parameter unchanged).

    >>> v = Valuation({"m1": 0.8, "m3": 0.8})
    >>> v["m1"], v["p1"]
    (0.8, 1.0)
    """

    __slots__ = ("assignment", "default")

    def __init__(self, assignment=None, default=1.0):
        self.assignment = dict(assignment) if assignment else {}
        self.default = default

    @classmethod
    def uniform(cls, variables, value, default=1.0):
        """Assign ``value`` to every variable in ``variables``."""
        return cls({var: value for var in variables}, default=default)

    @classmethod
    def coerce(cls, value, default=1.0):
        """Normalize a scenario-like object to a :class:`Valuation`.

        Accepts a :class:`Valuation` (returned unchanged, its own
        default wins), anything with a callable ``valuation(default)``
        method (e.g. :class:`~repro.scenarios.scenario.Scenario`),
        Valuation-shaped objects (an ``assignment`` mapping attribute,
        optionally a ``default``), or a plain variable→value mapping.

        >>> Valuation.coerce({"m1": 0.8})["m1"]
        0.8
        """
        if isinstance(value, cls):
            return value
        valuation = getattr(value, "valuation", None)
        if callable(valuation):
            return valuation(default)
        mapping = getattr(value, "assignment", None)
        if mapping is not None:
            return cls(mapping, default=getattr(value, "default", default))
        return cls(value, default=default)

    def __getitem__(self, variable):
        return self.assignment.get(variable, self.default)

    def __contains__(self, variable):
        return variable in self.assignment

    def set(self, variable, value):
        """Assign ``value`` to ``variable`` (chainable)."""
        self.assignment[variable] = value
        return self

    def evaluate(self, polynomials):
        """Value(s) of a polynomial or multiset under this valuation."""
        if isinstance(polynomials, Polynomial):
            return polynomials.evaluate(self.assignment, self.default)
        if isinstance(polynomials, PolynomialSet):
            return polynomials.evaluate(self.assignment, self.default)
        raise TypeError(f"expected Polynomial(Set), got {type(polynomials).__name__}")

    # ------------------------------------------------- abstraction interface

    def is_uniform_on(self, vvs):
        """True iff all leaves below each chosen node share one value."""
        for label in vvs.labels:
            group = vvs.group(label)
            if len(group) <= 1:
                continue
            values = {self[leaf] for leaf in group}
            if len(values) > 1:
                return False
        return True

    def lift(self, vvs):
        """The valuation on meta-variables induced by this one.

        Each chosen node gets the (unique) value of its group's leaves.
        Raises :class:`NonUniformError` if the valuation is not uniform
        on the VVS — in that case abstraction genuinely loses the
        scenario and there is no faithful lifting.
        """
        lifted = dict(self.assignment)
        for label in vvs.labels:
            group = vvs.group(label)
            values = {self[leaf] for leaf in group}
            if len(values) > 1:
                raise NonUniformError(
                    f"leaves of {label!r} receive distinct values {sorted(values)}"
                )
            for leaf in group:
                lifted.pop(leaf, None)
            (value,) = values
            if value != self.default:
                lifted[label] = value
        return Valuation(lifted, default=self.default)

    def __repr__(self):
        return f"Valuation({self.assignment!r}, default={self.default!r})"
