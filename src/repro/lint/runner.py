"""Discovery + orchestration for ``repro lint``.

:func:`run_lint` is the one entry point: it walks the requested paths,
parses each ``.py`` file once, fans it out to every applicable
checker, applies ``# repro-lint: ignore[...]`` pragmas and the
``--select``/``--ignore`` filters, runs the repo-level data checks,
and returns findings sorted by ``(path, line, code)``.
"""

from __future__ import annotations

import os

from repro.lint.base import CODE_RE, Finding, ModuleSource, suppressed_lines
from repro.lint.checkers import AST_CHECKERS
from repro.lint.data_checks import DATA_CHECKS

__all__ = ["all_rules", "iter_python_files", "run_lint"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


def all_rules() -> tuple:
    """Every registered rule class (AST checkers + data checks),
    validated for well-formed, unique codes."""
    rules = tuple(AST_CHECKERS) + tuple(DATA_CHECKS)
    seen = set()
    for rule in rules:
        if not CODE_RE.match(rule.code):
            raise ValueError(f"malformed rule code: {rule.code!r}")
        if rule.code in seen:
            raise ValueError(f"duplicate rule code: {rule.code!r}")
        seen.add(rule.code)
    return rules


def iter_python_files(paths):
    """Yield ``.py`` file paths under ``paths`` (files pass through;
    directories are walked, sorted, skipping hidden/cache dirs)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d not in _SKIP_DIRS
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        # Nonexistent paths are the CLI's problem, not the runner's.


def _selected(code: str, select, ignore) -> bool:
    if select is not None and code not in select:
        return False
    return not (ignore is not None and code in ignore)


def run_lint(
    paths,
    *,
    select=None,
    ignore=None,
    checkers=None,
    data_checks=True,
) -> list:
    """Lint ``paths`` and return sorted :class:`Finding` objects.

    * ``select``/``ignore`` — iterables of ``RPLxxx`` codes (select
      wins first, then ignore is subtracted); ``None`` = no filter;
    * ``checkers`` — override the AST checker classes (tests);
    * ``data_checks`` — run the repo-level RPL100 pass (skipped
      automatically when its input files aren't found).
    """
    select = frozenset(select) if select is not None else None
    ignore = frozenset(ignore) if ignore is not None else None
    checker_classes = AST_CHECKERS if checkers is None else tuple(checkers)
    active = [
        cls()
        for cls in checker_classes
        if _selected(cls.code, select, ignore)
    ]

    findings = []
    paths = list(paths)
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(filepath, 1, "RPL000", f"unreadable file: {error}")
            )
            continue
        module = ModuleSource(filepath, text)
        applicable = [c for c in active if c.applies_to(module.path)]
        if not applicable:
            continue
        try:
            module.tree
        except SyntaxError as error:
            if _selected("RPL000", select, ignore):
                findings.append(
                    Finding(
                        module.path,
                        error.lineno or 1,
                        "RPL000",
                        f"syntax error: {error.msg}",
                    )
                )
            continue
        suppressions = suppressed_lines(text)
        for checker in applicable:
            for finding in checker.check(module):
                if finding.code in suppressions.get(finding.line, ()):
                    continue
                findings.append(finding)

    if data_checks:
        findings.extend(_run_data_checks(paths, select, ignore))

    findings.sort(key=Finding.sort_key)
    return findings


def _run_data_checks(paths, select, ignore):
    """Repo-level checks, with per-file pragma suppression applied to
    whatever file each finding lands in."""
    pragma_cache = {}
    for cls in DATA_CHECKS:
        if not _selected(cls.code, select, ignore):
            continue
        rule = cls()
        root = rule.find_root(paths)
        if root is None:
            continue
        for finding in rule.check_repo(root):
            if finding.path not in pragma_cache:
                try:
                    with open(finding.path, encoding="utf-8") as handle:
                        pragma_cache[finding.path] = suppressed_lines(
                            handle.read()
                        )
                except OSError:
                    pragma_cache[finding.path] = {}
            suppressed = pragma_cache[finding.path].get(finding.line, ())
            if finding.code in suppressed:
                continue
            yield finding
