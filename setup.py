"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 support (editable
installs then fall back to ``setup.py develop``).
"""

from setuptools import setup

setup()
