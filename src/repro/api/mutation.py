"""The unified artifact mutation surface (streaming provenance).

The paper's deployment story assumes static provenance: capture once,
compress once, ask many times. Live data breaks that the moment a tuple
insert arrives — recompressing from scratch forfeits the amortization
the whole artifact model exists for. This module is the incremental
alternative: appended polynomials are abstracted *under the artifact's
existing cut* and appended to the artifact in place, with every derived
structure repaired rather than rebuilt (columnar CSR arrays, compiled
batch matrix, delta-engine index — see
:meth:`PolynomialSet.extend <repro.core.polynomial.PolynomialSet.extend>`).

Repair is exact, not approximate: monomials never merge across
polynomials (each polynomial's abstraction is independent), so the
repaired artifact is *identical* to abstracting the full extended
provenance under the same VVS from scratch — the invariant the
property suite pins bit-for-bit. What repair does **not** do is
re-solve for a better cut; the growing abstracted size is tracked as
*drift* against the artifact's bound, and when it exceeds a
configurable limit the mutation falls back to an exact from-scratch
recompression (which needs the original provenance — a
:class:`~repro.api.session.ProvenanceSession` has it, a bare artifact
does not).

Every mutation entry point — :meth:`ProvenanceSession.extend
<repro.api.session.ProvenanceSession.extend>`,
:meth:`CompressedProvenance.refresh
<repro.api.artifact.CompressedProvenance.refresh>`, ``python -m repro
extend`` and ``POST /artifacts/{id}/extend`` — returns one
:class:`MutationResult`. The tuple shape some early callers unpacked is
deprecated (a :class:`DeprecationWarning`, mirroring the
``resolve_options`` migration); use the named fields.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.abstraction import abstract, ensure_set
from repro.core.interning import VARIABLES
from repro.core.polynomial import Polynomial, PolynomialSet
from repro.errors import CompressionError
from repro.options import EvalOptions

if TYPE_CHECKING:
    from collections.abc import Callable, Iterator

    from repro.api.artifact import CompressedProvenance
    from repro.api.session import PolynomialsLike
    from repro.options import OptionsLike

__all__ = ["DEFAULT_DRIFT_LIMIT", "MutationResult", "extend_artifact"]

#: Default bound-drift tolerance: a repaired artifact may exceed its
#: bound by this fraction before a mutation falls back to an exact
#: recompression. ``drift = max(0, |P↓S|_M − B) / B``.
DEFAULT_DRIFT_LIMIT = 0.25

#: One warning per process for copy-on-extend of mmap-backed artifacts
#: (the pattern of ``repro.api.artifact._WARNED_JSON_MMAP``).
_WARNED_COPY_ON_EXTEND = False


@dataclass(frozen=True, slots=True)
class MutationResult:
    """What one artifact mutation did — the unified return shape.

    * ``artifact`` — the resulting :class:`CompressedProvenance` (a new
      object; the input artifact is consumed — its polynomial set may
      have been extended in place);
    * ``path`` — ``"repaired"`` (the cut was kept and every derived
      structure extended in place) or ``"recompressed"`` (drift
      exceeded the limit and an exact from-scratch compression ran);
    * ``drift`` / ``drift_limit`` — the observed bound overshoot
      fraction that steered the path, and the limit it was held to;
    * ``added_polynomials`` / ``added_monomials`` — the appended
      original provenance, by count;
    * ``revision`` — the result's lineage counter (input revision + 1);
    * ``artifact_id`` — the content-hash id when the mutation went
      through an :class:`~repro.service.store.ArtifactStore` (the
      service fills it; plain API mutations leave it ``None``).
    """

    artifact: CompressedProvenance
    path: str
    drift: float
    drift_limit: float
    added_polynomials: int
    added_monomials: int
    revision: int
    artifact_id: str | None = None

    def stats(self) -> dict[str, object]:
        """One JSON-ready dict — what the service and CLI emit."""
        payload: dict[str, object] = {
            "path": self.path,
            "drift": self.drift,
            "drift_limit": self.drift_limit,
            "added_polynomials": self.added_polynomials,
            "added_monomials": self.added_monomials,
            "revision": self.revision,
            "artifact": self.artifact.stats(),
        }
        if self.artifact_id is not None:
            payload["id"] = self.artifact_id
        return payload

    def with_id(self, artifact_id: str) -> MutationResult:
        """A copy carrying the store's content-hash id."""
        return replace(self, artifact_id=artifact_id)

    # ------------------------------------------------- deprecated shapes

    def _warn_tuple_shape(self) -> None:
        warnings.warn(
            "MutationResult: tuple-style access is deprecated; use the "
            "named fields (.artifact, .path, .drift, ...) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __iter__(self) -> Iterator[object]:
        """Deprecated ``artifact, path, drift`` unpacking (warns)."""
        self._warn_tuple_shape()
        return iter((self.artifact, self.path, self.drift))

    def __getitem__(self, index: int) -> object:
        """Deprecated positional access (warns)."""
        self._warn_tuple_shape()
        return (self.artifact, self.path, self.drift)[index]


def _writable_polynomials(artifact: CompressedProvenance) -> PolynomialSet:
    """The artifact's polynomials, copied when they refuse mutation.

    Binary-loaded artifacts view read-only ``mmap`` buffers through a
    :class:`~repro.core.binfmt.BufferBackedPolynomialSet`, whose
    ``append`` raises. Extending such an artifact routes through
    copy-on-extend: the polynomials are materialized into a plain
    (writable) :class:`PolynomialSet` first, with a one-time warning —
    the derived caches rebuild lazily on the copy.
    """
    from repro.core.binfmt import BufferBackedPolynomialSet

    polynomials = artifact.polynomials
    if not isinstance(polynomials, BufferBackedPolynomialSet):
        return polynomials
    global _WARNED_COPY_ON_EXTEND
    if not _WARNED_COPY_ON_EXTEND:
        _WARNED_COPY_ON_EXTEND = True
        warnings.warn(
            "extending a binary-loaded artifact copies its polynomials "
            "first (the mmap-backed set is read-only), so this mutation "
            "pays one materialization + recompile; load with mmap=False "
            "or keep a writable artifact around for repeated extends. "
            "This warning is emitted once per process.",
            UserWarning,
            stacklevel=4,
        )
    return PolynomialSet(list(polynomials))


def _ensure_added(polynomials: PolynomialsLike) -> PolynomialSet:
    """Normalize the appended provenance to a :class:`PolynomialSet`."""
    if isinstance(polynomials, (Polynomial, PolynomialSet)):
        return ensure_set(polynomials)
    return PolynomialSet(polynomials)


def extend_artifact(
    artifact: CompressedProvenance,
    added: PolynomialsLike,
    *,
    originals: PolynomialSet | None = None,
    recompress: Callable[[], CompressedProvenance] | None = None,
    drift_limit: float | None = None,
    options: OptionsLike = None,
    where: str = "extend_artifact",
) -> MutationResult:
    """Append original provenance to a compressed artifact — the core.

    ``added`` holds *original* (unabstracted) polynomials; they are
    abstracted under ``artifact.vvs`` and appended in place, repairing
    the columnar/compiled caches (:meth:`PolynomialSet.extend
    <repro.core.polynomial.PolynomialSet.extend>`). When the extended
    abstracted size drifts past ``drift_limit`` of the bound, the
    ``recompress`` callback (an exact from-scratch compression over the
    full original provenance) runs instead; without one, drift overflow
    raises :class:`~repro.errors.CompressionError` — a bare artifact
    cannot re-solve for a new cut (use
    :meth:`ProvenanceSession.extend
    <repro.api.session.ProvenanceSession.extend>`).

    ``originals`` — the full original provenance *including* ``added``
    — makes the variable-loss accounting exact by direct count; without
    it the accounting counts genuinely new variables against the
    artifact's own alphabet plus the forest labels (exact too, because
    every original variable is either free — and so survives
    abstraction — or a leaf of the compatibility-checked forest).
    """
    opts = EvalOptions.coerce(options)
    limit = DEFAULT_DRIFT_LIMIT if drift_limit is None else float(drift_limit)
    if limit < 0:
        raise ValueError(f"{where}: drift_limit must be >= 0, got {limit!r}")
    added = _ensure_added(added)
    forest = artifact.forest
    internal = forest.labels - forest.leaf_labels
    clashing = internal & added.variables
    if clashing:
        from repro.core.forest import CompatibilityError

        raise CompatibilityError(
            f"{where}: appended polynomials mention meta-variable(s) "
            f"{sorted(clashing)} of the abstraction forest"
        )
    added_polynomials = len(added)
    added_monomials = added.num_monomials
    bound = max(1, artifact.bound)
    revision = artifact.revision + 1

    # Abstract only the delta under the existing cut. Monomials never
    # merge across polynomials, so |extended↓S|_M is exactly the sum —
    # the drift check needs no materialized extension.
    delta = abstract(added, artifact.vvs, backend=opts.backend)
    size = artifact.polynomials.num_monomials + delta.num_monomials
    drift = max(0, size - bound) / bound
    if drift > limit:
        if recompress is None:
            raise CompressionError(
                f"{where}: extending would leave {size} monomials, "
                f"{drift:.3f} past the bound {artifact.bound} (limit "
                f"{limit}); recompressing needs the original provenance "
                "— mutate through ProvenanceSession.extend"
            )
        fresh = recompress()
        fresh.revision = revision
        return MutationResult(
            artifact=fresh,
            path="recompressed",
            drift=drift,
            drift_limit=limit,
            added_polynomials=added_polynomials,
            added_monomials=added_monomials,
            revision=revision,
        )

    # Loss accounting before mutating: monomial loss is additive per
    # polynomial; variable counts need the pre-extension alphabet.
    monomial_loss = artifact.monomial_loss + (
        added_monomials - delta.num_monomials
    )
    original_size = artifact.original_size + added_monomials
    if originals is not None:
        original_granularity = originals.num_variables
    else:
        known = artifact.polynomials.variable_ids()
        label_ids = {VARIABLES.intern(label) for label in forest.labels}
        new_variables = sum(
            1
            for vid in added.variable_ids()
            if vid not in known and vid not in label_ids
        )
        original_granularity = artifact.original_granularity + new_variables

    base = _writable_polynomials(artifact)
    base.extend(delta.polynomials)
    variable_loss = original_granularity - base.num_variables

    from repro.api.artifact import CompressedProvenance

    repaired = CompressedProvenance(
        base,
        forest,
        artifact.vvs,
        algorithm=artifact.algorithm,
        bound=artifact.bound,
        original_size=original_size,
        original_granularity=original_granularity,
        monomial_loss=monomial_loss,
        variable_loss=variable_loss,
        revision=revision,
    )
    return MutationResult(
        artifact=repaired,
        path="repaired",
        drift=drift,
        drift_limit=limit,
        added_polynomials=added_polynomials,
        added_monomials=added_monomials,
        revision=revision,
    )
