"""repro — reproduction of "Hypothetical Reasoning via Provenance Abstraction".

(Deutch, Moskovitch, Rinetzky; SIGMOD 2019 / arXiv:2007.05400)

The package provides:

* ``repro.core`` — provenance polynomials, abstraction trees/forests,
  valid variable sets, loss measures, valuations;
* ``repro.algorithms`` — the paper's optimal single-tree DP
  (Algorithm 1), the multi-tree greedy (Algorithm 2), the brute-force
  baseline and the Ainy-et-al. competitor;
* ``repro.semiring`` + ``repro.engine`` — a K-relation query engine
  that *produces* provenance polynomials from SPJU + aggregate queries;
* ``repro.scenarios`` — hypothetical ("what-if") reasoning over raw and
  abstracted provenance, plus the §6 sampling-based online pipeline;
* ``repro.workloads`` — the telephony running example, a scaled TPC-H
  generator with queries Q1/Q5/Q10, and abstraction-tree generators;
* ``repro.hardness`` — the Appendix A NP-hardness machinery, executable.

Quickstart::

    from repro import (AbstractionForest, AbstractionTree, optimal_vvs,
                       parse_set)
    polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"])
    tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
    result = optimal_vvs(polys, tree, bound=2)
    print(result.vvs, result.abstracted_size, result.variable_loss)
"""

from repro.core import (
    AbstractionForest,
    AbstractionTree,
    CompatibilityError,
    LossIndex,
    Monomial,
    NonUniformError,
    ParseError,
    Polynomial,
    PolynomialSet,
    TreeNode,
    ValidVariableSet,
    Valuation,
    abstract,
    abstract_counts,
    monomial_loss,
    parse,
    parse_set,
    variable_loss,
)

__version__ = "1.0.0"

__all__ = [
    "Monomial",
    "Polynomial",
    "PolynomialSet",
    "AbstractionTree",
    "TreeNode",
    "AbstractionForest",
    "ValidVariableSet",
    "CompatibilityError",
    "LossIndex",
    "abstract",
    "abstract_counts",
    "monomial_loss",
    "variable_loss",
    "Valuation",
    "NonUniformError",
    "parse",
    "parse_set",
    "ParseError",
    "optimal_vvs",
    "greedy_vvs",
    "brute_force_vvs",
    "__version__",
]


def __getattr__(name):
    # Lazy imports to keep `import repro` light and cycle-free.
    if name == "optimal_vvs":
        from repro.algorithms.optimal import optimal_vvs

        return optimal_vvs
    if name == "greedy_vvs":
        from repro.algorithms.greedy import greedy_vvs

        return greedy_vvs
    if name == "brute_force_vvs":
        from repro.algorithms.brute_force import brute_force_vvs

        return brute_force_vvs
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
