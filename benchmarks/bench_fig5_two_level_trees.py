"""Figure 5: compression time as a function of the number of cuts,
2-level (type 1) abstraction trees.

Paper shape: Opt VVS and the greedy grow moderately with the number of
valid variable sets; brute force only completes below ~80,000 cuts (we
cap it tighter for bench runtime). Greedy ≤ Opt everywhere; on the
workloads where the bound needs the whole tree (running example, Q10)
the two coincide.
"""

import pytest

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

#: Brute force above this many cuts takes minutes at bench scale.
BRUTE_CAP = 1_000


def _series(workload, tree_type):
    rows = []
    seen = set()
    for fanouts in common.catalog_fanouts(tree_type):
        fanouts = common.scaled_fanouts(fanouts)
        if fanouts in seen:
            continue  # clamping can collapse configurations
        seen.add(fanouts)
        provenance = common.workload_provenance(workload)
        tree = common.workload_tree(workload, fanouts).clean(
            provenance.variables
        )
        if tree is None:
            continue
        cuts = tree.count_cuts()
        bound = common.feasible_bound(provenance, tree)

        opt_seconds, _ = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        greedy_seconds, _ = common.timed(
            greedy_vvs, provenance, common.forest_of(tree), bound, clean=False
        )
        if cuts <= BRUTE_CAP:
            brute_seconds, _ = common.timed(
                brute_force_vvs, provenance, common.forest_of(tree), bound,
                clean=False,
            )
            brute_cell = f"{brute_seconds:.3f}"
        else:
            brute_cell = "-"
        rows.append(
            [workload, str(fanouts), cuts, f"{opt_seconds:.3f}",
             f"{greedy_seconds:.3f}", brute_cell]
        )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_fig5(benchmark, workload):
    rows = benchmark.pedantic(
        _series, args=(workload, 1), rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig5_{workload}",
        ["workload", "fanouts", "cuts", "opt [s]", "greedy [s]", "brute [s]"],
        rows,
        title=f"Figure 5 — {workload}: time vs #cuts (2-level trees)",
    )
    # Shape assertions: series exists and greedy never (meaningfully)
    # slower than brute force where brute force ran.
    assert rows
