"""Sharded scenario evaluation across a process pool.

:meth:`~repro.core.polynomial.PolynomialSet.evaluate_batch` already
turns a scenario suite into a handful of NumPy array operations, but it
runs them on one core. For the sweep volumes the paper's workload
implies (grids and Monte-Carlo families of 10⁴–10⁶ scenarios), the
remaining wall-clock is CPU-bound and embarrassingly parallel: every
scenario row of the ``(S, P)`` answer matrix is independent.

:func:`evaluate_scenarios_parallel` shards that matrix across a
:class:`concurrent.futures.ProcessPoolExecutor`:

* the compiled :class:`~repro.core.batch.CompiledPolynomialSet` is
  **published once, not pickled per worker**: the parent renders it
  into a :mod:`multiprocessing.shared_memory` segment in the binary
  container format (:func:`repro.core.binfmt.dumps_compiled`) and each
  worker's initializer rebuilds a read-only compiled set as NumPy
  views *directly over the segment* — O(1) start-up per worker however
  large the matrix. Compiled sets that were loaded from a binary
  artifact file skip even that: they pickle as just their path
  (:attr:`CompiledPolynomialSet.source
  <repro.core.batch.CompiledPolynomialSet.source>`) and each worker
  re-maps the file. Either way the column map travels by variable
  name, so workers re-intern and answer bit-identically whatever
  their start method. The segment is unlinked when the pool exits —
  nothing is left in ``/dev/shm``;
* the parent then streams *work descriptions*, not data — for a
  :class:`~repro.scenarios.sweep.Sweep` an ``(start, stop)`` index
  range (workers regenerate their shard from the sweep spec), for a
  generic iterable a chunk of plain ``(assignment, default)`` rows;
* results come back as ``(chunk, P)`` arrays and are concatenated in
  submission order, so the parallel answer is **bit-identical** to the
  serial one (row-wise float operations are unchanged; only the outer
  loop moved).

Every entry point takes ``engine=`` (``"dense"``, ``"delta"``,
``"auto"``; see :mod:`repro.core.batch`). Under the delta engine each
worker computes the baseline monomial values **once** (cached on its
compiled set, which shipped with the pool initializer) and shards
carry only sparse deltas: Sweep workers regenerate bare changes
mappings via :meth:`Sweep.iter_changes
<repro.scenarios.sweep.Sweep.iter_changes>` — no scenario names are
ever built — and generic chunks are already plain sparse rows. For
sweeps, ``"auto"`` is resolved once in the parent from
:meth:`Sweep.mean_changes <repro.scenarios.sweep.Sweep.mean_changes>`
(the spec knows its density); for other inputs each chunk resolves
itself. Engines are bit-identical, so the choice never changes
answers — only the schedule.

Small inputs fall back to the serial compiled path — below
:data:`MIN_PARALLEL_SCENARIOS` rows the pool start-up would dominate.
Serial evaluation of large/unsized inputs is chunked too, so a
million-scenario sweep never materializes a Python list of dicts.

**Self-healing.** Sweeps survive worker failure: a
:class:`~concurrent.futures.process.BrokenProcessPool` or a per-shard
timeout tears the pool down, respawns it with the same initializer
(the shared-memory segment outlives respawns), and resubmits only the
shards still outstanding, with capped exponential backoff from the
shared :class:`~repro.util.retry.RetryPolicy`. Because shards are pure
``(start, stop)`` index ranges over an immutable spec, a retried shard
recomputes exactly the bytes the first attempt would have produced —
healed sweeps stay bit-identical to serial. A shard that keeps failing
(``retry.attempts`` times) is quarantined: it degrades to in-process
serial evaluation in the parent rather than failing the sweep. Fault
sites ``worker.start`` and ``shard.evaluate`` (:mod:`repro.faults`)
let chaos tests schedule those failures deterministically.
"""

from __future__ import annotations

import itertools
import os
import secrets
import time
from collections import deque
from contextlib import contextmanager
from functools import partial

import numpy

from repro.core.batch import ENGINES as _ENGINES
from repro.core.valuation import Valuation
from repro.faults import inject
from repro.scenarios.sweep import DEFAULT_CHUNK_SIZE, Sweep
from repro.util.retry import RetryPolicy

__all__ = [
    "MIN_PARALLEL_SCENARIOS",
    "evaluate_scenarios_parallel",
    "iter_value_blocks",
]

#: Below this many scenarios, parallel requests run serially: pool
#: start-up (fork + one compiled-set pickle per worker) costs more than
#: evaluating the suite outright.
MIN_PARALLEL_SCENARIOS = 512

#: Keep at most this many chunks in flight per worker — bounds parent
#: memory while keeping every worker busy.
_INFLIGHT_PER_WORKER = 4

#: Healing defaults: three attempts per shard with fast capped backoff.
#: Sweeps are interactive-adjacent — long sleeps would dwarf the retry.
_DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.05, max_delay=1.0)

# ---------------------------------------------------------------- workers

#: The compiled set installed in each worker by the pool initializer.
_WORKER_COMPILED = None

#: The shared-memory segment backing ``_WORKER_COMPILED`` (kept alive
#: for the worker's lifetime; the compiled arrays are views into it).
_WORKER_SEGMENT = None


def _init_worker(compiled):
    """Pool initializer: adopt the compiled set.

    For file-backed compiled sets the pickle shrank to just the source
    path, so ``compiled`` arrived by re-mapping the artifact file —
    O(1) transfer whatever the matrix size.
    """
    global _WORKER_COMPILED
    inject("worker.start")
    _WORKER_COMPILED = compiled


def _attach_segment(name):
    """Open an existing shared-memory segment; the parent owns cleanup.

    Python 3.13 has ``track=False`` so attachers skip resource-tracker
    registration outright. Earlier versions register unconditionally —
    but the tracker cache is a *set* shared by the whole process tree,
    so the worker registrations are no-op re-adds and the parent's one
    ``unlink()`` at pool exit balances them. Unregistering per worker
    would over-remove from the set and make the tracker complain.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _init_worker_shm(name):
    """Pool initializer: rebuild the compiled set over shared memory.

    The parent published the container bytes once; this builds
    read-only NumPy views straight over the segment — no pickle, no
    copy, O(1) per worker.
    """
    global _WORKER_COMPILED, _WORKER_SEGMENT
    from repro.core import binfmt

    inject("worker.start")
    segment = _attach_segment(name)
    _WORKER_SEGMENT = segment
    _WORKER_COMPILED = binfmt.compiled_from_buffer(segment.buf)


@contextmanager
def _pool_setup(compiled):
    """Yield the pool ``(initializer, initargs)`` publishing ``compiled``.

    Three cases, cheapest transport that applies:

    * file-backed compiled sets (``source`` set — loaded from a binary
      artifact) pickle as just their path; workers re-map the file;
    * ordinary compiled sets are rendered once into a shared-memory
      segment that workers reopen zero-copy; the segment is closed and
      unlinked when the pool exits, so nothing leaks into ``/dev/shm``
      — the create sits *inside* the try so an exception raised in the
      parent between segment creation and pool exit (even an async one
      landing mid-setup) still reaches the unlink;
    * objects without container support (test doubles) fall back to
      the plain pickle-per-pool initializer.
    """
    if getattr(compiled, "source", None) is not None or not hasattr(
        compiled, "_state"
    ):
        yield _init_worker, (compiled,)
        return

    from multiprocessing import shared_memory

    from repro.core import binfmt

    blob = binfmt.dumps_compiled(compiled)
    segment = None
    try:
        segment = shared_memory.SharedMemory(
            create=True,
            size=len(blob),
            name=f"repro-{os.getpid()}-{secrets.token_hex(4)}",
        )
        segment.buf[: len(blob)] = blob
        yield _init_worker_shm, (segment.name,)
    finally:
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


def _evaluate_rows(rows, engine="dense"):
    """Worker task: valuate explicit ``(assignment, default)`` rows."""
    inject("shard.evaluate")
    valuations = [
        Valuation(assignment, default=default) for assignment, default in rows
    ]
    return _WORKER_COMPILED.evaluate(valuations, engine=engine)


def _evaluate_span(sweep, start, stop, default, engine="dense"):
    """Worker task: regenerate a sweep shard by index range and valuate.

    Only the changes mappings are regenerated (the sweep's sparse-delta
    form) — scenario names do not affect values, and the delta engine's
    baseline is cached on the worker's compiled set, so it is computed
    once per worker however many shards arrive.
    """
    inject("shard.evaluate")
    return _WORKER_COMPILED.evaluate(
        sweep.iter_changes(start, stop), default, engine
    )


# ----------------------------------------------------------------- helpers


def _coerce_rows(scenarios, default):
    """Plain-data ``(assignment, default)`` rows for pickling."""
    rows = []
    for entry in scenarios:
        valuation = Valuation.coerce(entry, default)
        rows.append((valuation.assignment, valuation.default))
    return rows


def _chunked(iterable, size):
    """Yield lists of up to ``size`` items (no full materialization)."""
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _compiled_of(polynomials):
    """The compiled evaluator of a set (or a compiled set, unchanged)."""
    compiled = getattr(polynomials, "compiled", None)
    if callable(compiled):
        return compiled()
    return polynomials


def _resolve_workers(workers):
    """Normalize the ``workers`` argument to an int worker count."""
    if workers is None:
        return 0
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _resolve_engine(compiled, scenarios, engine):
    """Pin down ``engine`` as far as the input shape allows.

    Sweeps declare their per-scenario density in the spec, so
    ``"auto"`` resolves here — once, in the parent — and every shard
    runs the same engine. Other inputs keep ``"auto"`` and let each
    evaluated chunk decide (bit-identical either way). Unknown names
    raise immediately rather than inside a worker.
    """
    if engine == "auto" and isinstance(scenarios, Sweep):
        return compiled.resolve_engine(
            engine, mean_changes=scenarios.mean_changes()
        )
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


def _resolve_retry(retry):
    """Normalize the ``retry`` argument to a ``RetryPolicy``."""
    if retry is None:
        return _DEFAULT_RETRY
    if not isinstance(retry, RetryPolicy):
        raise TypeError(f"retry must be a RetryPolicy, got {type(retry)!r}")
    return retry


# ---------------------------------------------------------------- serial


def _evaluate_serial(compiled, scenarios, default, chunk_size, engine):
    """Chunked single-process evaluation (bounded memory)."""
    if isinstance(scenarios, Sweep):
        blocks = [
            compiled.evaluate(
                scenarios.iter_changes(start, stop), default, engine
            )
            for start, stop in scenarios.chunks(chunk_size)
        ]
    else:
        blocks = [
            compiled.evaluate(chunk, default, engine)
            for chunk in _chunked(scenarios, chunk_size)
        ]
    if not blocks:
        return numpy.zeros((0, compiled.num_polynomials), dtype=numpy.float64)
    if len(blocks) == 1:
        return blocks[0]
    return numpy.concatenate(blocks, axis=0)


# --------------------------------------------------------------- parallel


class _Shard:
    """One unit of pool work plus its in-parent fallback.

    ``fn(*args)`` runs in a worker; ``local()`` evaluates the same
    shard in the parent (the quarantine degrade — bit-identical, since
    both paths run the identical compiled evaluation over the identical
    rows). ``meta`` carries caller bookkeeping through the healing
    stream; ``failures`` is the per-shard retry ledger.
    """

    __slots__ = ("fn", "args", "local", "token", "meta", "failures")

    def __init__(self, fn, args, local, token, meta=None):
        self.fn = fn
        self.args = args
        self.local = local
        self.token = token
        self.meta = meta
        self.failures = 0


#: Slot sentinel: the shard is quarantined — evaluate in-parent when it
#: reaches the head of the queue.
_LOCAL = object()

#: Shard-iterator sentinel (shards themselves are never ``None``-like).
_EXHAUSTED = object()


class _Done:
    """Slot wrapper for a result salvaged from a dying pool."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _terminate(executor):
    """Tear an executor down without waiting on possibly-hung workers."""
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None)
    for process in list(processes.values()) if processes else ():
        process.terminate()


def _healed_stream(shards, *, workers, initializer, initargs, retry,
                   shard_timeout):
    """Yield ``(shard, values)`` in submission order, healing failures.

    The happy path matches the old submit stream: shards are submitted
    with bounded in-flight backpressure and results are consumed from
    the head of the queue, preserving submission order. Failure
    handling layers on top:

    * a shard whose future raises is resubmitted (head of the queue —
      order never changes) after ``retry.delay`` backoff; after
      ``retry.attempts`` failures it is quarantined to ``_LOCAL`` and
      evaluated in the parent when it reaches the head;
    * a broken pool or a head-shard timeout kills and respawns the
      executor; every unfinished in-flight shard is charged one failure
      (the culprit cannot be attributed, and charging all of them keeps
      the respawn count finite) and resubmitted; results that completed
      before the breakage are salvaged as ``_Done``;
    * ``shard_timeout`` bounds the wait on the *oldest* outstanding
      shard — the one every worker had first claim on — so a hung
      worker cannot stall the sweep forever.

    Correctness is unaffected by any of this: shards are pure functions
    of ``(spec, start, stop)``, so whichever path finally answers one,
    the bytes are the ones a serial pass would have produced.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    def spawn():
        return ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )

    executor = spawn()
    pending = deque()  # [shard, slot]; slot: Future | _Done | _LOCAL | None
    respawns = 0
    shard_iter = iter(shards)
    max_inflight = workers * _INFLIGHT_PER_WORKER

    def charge(shard):
        """Record one failure; True once the shard should go local."""
        shard.failures += 1
        return shard.failures >= retry.attempts

    def heal():
        """Respawn the pool; salvage, charge, and resubmit in-flight."""
        nonlocal executor, respawns
        respawns += 1
        _terminate(executor)
        time.sleep(retry.delay(min(respawns, retry.attempts), "pool"))
        executor = spawn()
        for entry in pending:
            shard, slot = entry
            if slot is _LOCAL or slot is None or isinstance(slot, _Done):
                continue
            if (
                slot.done()
                and not slot.cancelled()
                and slot.exception() is None
            ):
                entry[1] = _Done(slot.result())
            else:
                entry[1] = _LOCAL if charge(shard) else None
        for entry in pending:
            if entry[1] is None:
                try:
                    entry[1] = executor.submit(entry[0].fn, *entry[0].args)
                except BrokenProcessPool:
                    # Leave the slot None; the head loop re-heals. Every
                    # round charges the in-flight shards, so this ends.
                    return

    try:
        exhausted = False
        while True:
            while not exhausted and len(pending) < max_inflight:
                shard = next(shard_iter, _EXHAUSTED)
                if shard is _EXHAUSTED:
                    exhausted = True
                    break
                try:
                    slot = executor.submit(shard.fn, *shard.args)
                except BrokenProcessPool:
                    slot = None
                pending.append([shard, slot])
                if slot is None:
                    heal()
            if not pending:
                break
            shard, slot = pending[0]
            if slot is _LOCAL:
                pending.popleft()
                yield shard, shard.local()
                continue
            if isinstance(slot, _Done):
                pending.popleft()
                yield shard, slot.value
                continue
            if slot is None:
                try:
                    pending[0][1] = executor.submit(shard.fn, *shard.args)
                except BrokenProcessPool:
                    heal()
                continue
            try:
                values = slot.result(timeout=shard_timeout)
            except FutureTimeout:
                heal()
                continue
            except BrokenProcessPool:
                heal()
                continue
            except Exception:
                pending.popleft()
                if charge(shard):
                    pending.appendleft([shard, _LOCAL])
                    continue
                time.sleep(retry.delay(shard.failures, shard.token))
                try:
                    retried = executor.submit(shard.fn, *shard.args)
                except BrokenProcessPool:
                    retried = None
                pending.appendleft([shard, retried])
                if retried is None:
                    heal()
                continue
            pending.popleft()
            yield shard, values
    finally:
        executor.shutdown(wait=True, cancel_futures=True)


def _span_local(compiled, sweep, start, stop, default, engine):
    """Quarantine fallback: evaluate a sweep span in the parent."""
    return compiled.evaluate(sweep.iter_changes(start, stop), default, engine)


def _rows_local(compiled, rows, engine):
    """Quarantine fallback: evaluate explicit rows in the parent."""
    valuations = [
        Valuation(assignment, default=default) for assignment, default in rows
    ]
    return compiled.evaluate(valuations, engine=engine)


def evaluate_scenarios_parallel(polynomials, scenarios, *, workers,
                                default=1.0, chunk_size=None,
                                min_parallel=MIN_PARALLEL_SCENARIOS,
                                engine="auto", retry=None,
                                shard_timeout=None):
    """Valuate a scenario family sharded across worker processes.

    :param polynomials: a :class:`~repro.core.polynomial.PolynomialSet`
        (compiled on demand, cached) or a prebuilt
        :class:`~repro.core.batch.CompiledPolynomialSet`.
    :param scenarios: a :class:`~repro.scenarios.sweep.Sweep` (workers
        regenerate shards from the spec — nothing but index ranges
        cross the pipe) or any iterable of Scenario / Valuation /
        mapping entries (streamed in chunks of plain rows).
    :param workers: process count; ``None``/``0``/``1`` evaluates
        serially (still chunked), as does any input smaller than
        ``min_parallel``.
    :param chunk_size: scenarios per shard (default
        :data:`~repro.scenarios.sweep.DEFAULT_CHUNK_SIZE`).
    :param min_parallel: the serial-fallback threshold; pass ``0`` to
        force the pool (the equivalence tests do).
    :param engine: ``"dense"``, ``"delta"`` or ``"auto"`` (the
        default; see the module docstring). Bit-identical answers
        whichever engine runs.
    :param retry: the :class:`~repro.util.retry.RetryPolicy` governing
        shard retries and pool respawns (default: 3 attempts, 50 ms
        base, 1 s cap). Healed results stay bit-identical to serial.
    :param shard_timeout: seconds to wait on the oldest outstanding
        shard before declaring its worker hung and respawning the pool
        (``None`` — the default — waits forever).
    :returns: the ``(S, P)`` answer matrix — bit-identical to
        :meth:`PolynomialSet.evaluate_batch
        <repro.core.polynomial.PolynomialSet.evaluate_batch>` on the
        same scenarios.
    """
    compiled = _compiled_of(polynomials)
    workers = _resolve_workers(workers)
    engine = _resolve_engine(compiled, scenarios, engine)
    retry = _resolve_retry(retry)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    total = len(scenarios) if hasattr(scenarios, "__len__") else None
    if workers <= 1 or (total is not None and total < min_parallel):
        return _evaluate_serial(compiled, scenarios, default, chunk_size,
                                engine)

    if isinstance(scenarios, Sweep):
        shards = (
            _Shard(
                _evaluate_span, (scenarios, start, stop, default, engine),
                local=partial(_span_local, compiled, scenarios, start, stop,
                              default, engine),
                token=f"span-{start}",
            )
            for start, stop in scenarios.chunks(chunk_size)
        )
    else:
        shards = (
            _Shard(
                _evaluate_rows, (rows, engine),
                local=partial(_rows_local, compiled, rows, engine),
                token=f"rows-{index}",
            )
            for index, rows in enumerate(
                _coerce_rows(chunk, default)
                for chunk in _chunked(scenarios, chunk_size)
            )
        )

    blocks = []
    with _pool_setup(compiled) as (initializer, initargs):
        blocks.extend(
            values
            for _, values in _healed_stream(
                shards, workers=workers, initializer=initializer,
                initargs=initargs, retry=retry, shard_timeout=shard_timeout,
            )
        )
    if not blocks:
        return numpy.zeros((0, compiled.num_polynomials), dtype=numpy.float64)
    if len(blocks) == 1:
        return blocks[0]
    return numpy.concatenate(blocks, axis=0)


def iter_value_blocks(polynomials, scenarios, *, default=1.0, workers=None,
                      chunk_size=None, transform=None, materialize=True,
                      engine="auto", retry=None, shard_timeout=None):
    """Stream ``(start, scenarios_chunk, values_chunk)`` blocks.

    The O(k)-memory backbone of :func:`~repro.scenarios.analysis.top_k`
    and :func:`~repro.scenarios.analysis.sensitivity`: the full
    ``(S, P)`` matrix is never held — each yielded block pairs a chunk
    of the original scenario objects with its ``(chunk, P)`` values.
    With ``workers > 1``, chunk evaluation shards across a process pool
    for every input shape: Sweep shards ship as index ranges;
    generic iterables (and transformed entries — transforms run in the
    parent, they may close over un-picklable state) ship as plain rows.
    Pool failures heal exactly as in
    :func:`evaluate_scenarios_parallel` (same ``retry`` /
    ``shard_timeout`` knobs), and blocks still arrive in order.

    :param transform: optional per-scenario callable applied before
        evaluation (e.g. lifting onto an artifact's meta-variables);
        the yielded scenario objects stay untransformed so callers keep
        names and change-sets.
    :param materialize: when ``False`` and the input is a
        :class:`~repro.scenarios.sweep.Sweep` evaluated without a
        transform, blocks carry ``None`` instead of the scenario chunk
        — the caller indexes ``scenarios[i]`` for the few entries it
        keeps instead of the parent regenerating every shard the
        workers already generated.
    :param engine: ``"dense"``, ``"delta"`` or ``"auto"`` (the
        default; see the module docstring).
    """
    compiled = _compiled_of(polynomials)
    workers = _resolve_workers(workers)
    engine = _resolve_engine(compiled, scenarios, engine)
    retry = _resolve_retry(retry)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    use_pool = workers > 1 and (
        not hasattr(scenarios, "__len__")
        or len(scenarios) >= MIN_PARALLEL_SCENARIOS
    )
    span_mode = isinstance(scenarios, Sweep) and transform is None

    if not use_pool:
        start = 0
        if span_mode and not materialize:
            for start, stop in scenarios.chunks(chunk_size):
                values = compiled.evaluate(
                    scenarios.iter_changes(start, stop), default, engine
                )
                yield start, None, values
            return
        for chunk in _chunked(scenarios, chunk_size):
            entries = chunk if transform is None else [
                transform(entry) for entry in chunk
            ]
            yield start, chunk, compiled.evaluate(entries, default, engine)
            start += len(chunk)
        return

    if span_mode:
        def shards():
            for start, stop in scenarios.chunks(chunk_size):
                chunk = None if not materialize else (start, stop)
                yield _Shard(
                    _evaluate_span, (scenarios, start, stop, default, engine),
                    local=partial(_span_local, compiled, scenarios, start,
                                  stop, default, engine),
                    token=f"span-{start}",
                    meta=(start, chunk),
                )
    else:
        def shards():
            start = 0
            for chunk in _chunked(scenarios, chunk_size):
                entries = chunk if transform is None else [
                    transform(entry) for entry in chunk
                ]
                rows = _coerce_rows(entries, default)
                yield _Shard(
                    _evaluate_rows, (rows, engine),
                    local=partial(_rows_local, compiled, rows, engine),
                    token=f"rows-{start}",
                    meta=(start, chunk),
                )
                start += len(chunk)

    with _pool_setup(compiled) as (initializer, initargs):
        for shard, values in _healed_stream(
            shards(), workers=workers, initializer=initializer,
            initargs=initargs, retry=retry, shard_timeout=shard_timeout,
        ):
            start, chunk = shard.meta
            yield start, _realize(scenarios, chunk), values


def _realize(scenarios, chunk):
    """Materialize a deferred ``(start, stop)`` span chunk (or pass through)."""
    if isinstance(chunk, tuple):
        return scenarios.materialize(*chunk)
    return chunk
