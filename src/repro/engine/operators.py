"""Positive relational algebra over K-relations (SPJU).

Annotation propagation follows the semiring model exactly:

* selection keeps annotations;
* projection ⊕-combines annotations of tuples that collapse;
* join ⊗-multiplies the matched tuples' annotations;
* union ⊕-combines annotations of equal tuples.

Difference/negation is deliberately absent — semirings have no minus,
which is also why the paper's model covers SPJU (+ aggregates).
"""

from __future__ import annotations

from repro.engine.schema import Schema, SchemaError
from repro.engine.table import Relation

__all__ = ["select", "project", "join", "union", "rename", "extend"]


def _require_same_semiring(left, right):
    if left.semiring is not right.semiring:
        raise ValueError(
            f"semiring mismatch: {left.semiring.name} vs {right.semiring.name}"
        )


def select(relation, predicate):
    """``σ_predicate`` — keep rows whose dict satisfies ``predicate``."""
    out = Relation(relation.schema, semiring=relation.semiring, name=relation.name)
    for row, annotation in relation:
        if predicate(relation.schema.row_to_dict(row)):
            out.add(row, annotation)
    return out


def project(relation, columns):
    """``π_columns`` — project, ⊕-combining collapsing rows."""
    schema = relation.schema.project(columns)
    positions = [relation.schema.index(c) for c in columns]
    out = Relation(schema, semiring=relation.semiring)
    for row, annotation in relation:
        out.add(tuple(row[p] for p in positions), annotation)
    return out


def rename(relation, mapping):
    """``ρ`` — rename columns via ``mapping`` (old → new)."""
    for column in mapping:
        relation.schema.index(column)
    out = Relation(
        relation.schema.rename(mapping),
        semiring=relation.semiring,
        name=relation.name,
    )
    for row, annotation in relation:
        out.add(row, annotation)
    return out


def extend(relation, column, fn):
    """Add a computed column ``fn(row_dict)`` (annotation-preserving).

    Not part of classic SPJU but needed by aggregate workloads (e.g.
    TPC-H's ``l_extendedprice * (1 - l_discount)``).
    """
    if column in relation.schema:
        raise SchemaError(f"column {column!r} already exists")
    schema = Schema(relation.schema.columns + (column,))
    out = Relation(schema, semiring=relation.semiring)
    for row, annotation in relation:
        value = fn(relation.schema.row_to_dict(row))
        out.add(row + (value,), annotation)
    return out


def _normalize_on(on):
    """Accept ``"col"``, ``("l", "r")``, or lists thereof."""
    if isinstance(on, str):
        return [(on, on)]
    if isinstance(on, tuple) and len(on) == 2 and all(isinstance(c, str) for c in on):
        return [on]
    pairs = []
    for item in on:
        if isinstance(item, str):
            pairs.append((item, item))
        else:
            left, right = item
            pairs.append((left, right))
    if not pairs:
        raise ValueError("join requires at least one column pair")
    return pairs


def join(left, right, on):
    """``⋈`` — equi-join; matched annotations ⊗-multiply.

    ``on`` names the join columns: a single name (same on both sides),
    a ``(left, right)`` pair, or a list of either. The output schema is
    the left schema followed by the right's non-join columns.
    """
    _require_same_semiring(left, right)
    pairs = _normalize_on(on)
    left_positions = [left.schema.index(col) for col, _ in pairs]
    right_positions = [right.schema.index(r) for _, r in pairs]
    right_join_cols = {r for _, r in pairs}
    right_keep = [
        (position, column)
        for position, column in enumerate(right.schema.columns)
        if column not in right_join_cols
    ]
    schema = left.schema.concat(right.schema, drop_from_other=right_join_cols)

    # Hash join: index the smaller side.
    index = {}
    for row, annotation in right:
        key = tuple(row[p] for p in right_positions)
        index.setdefault(key, []).append((row, annotation))

    semiring = left.semiring
    out = Relation(schema, semiring=semiring)
    for row, annotation in left:
        key = tuple(row[p] for p in left_positions)
        for right_row, right_annotation in index.get(key, ()):
            combined = semiring.times(annotation, right_annotation)
            out.add(
                row + tuple(right_row[p] for p, _ in right_keep),
                combined,
            )
    return out


def union(left, right):
    """``∪`` — same-schema union; equal tuples' annotations ⊕-combine."""
    _require_same_semiring(left, right)
    if left.schema != right.schema:
        raise SchemaError(
            f"union schemas differ: {left.schema!r} vs {right.schema!r}"
        )
    out = Relation(left.schema, semiring=left.semiring)
    for row, annotation in left:
        out.add(row, annotation)
    for row, annotation in right:
        out.add(row, annotation)
    return out
