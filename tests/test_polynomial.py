"""Unit tests for repro.core.polynomial.Polynomial."""

import pytest

from repro.core.parser import parse
from repro.core.polynomial import Monomial, Polynomial


class TestConstruction:
    def test_zero(self):
        assert Polynomial.zero().num_monomials == 0
        assert not Polynomial.zero()

    def test_constant(self):
        p = Polynomial.constant(5)
        assert p.num_monomials == 1
        assert p.coefficient(Monomial.ONE) == 5

    def test_variable(self):
        p = Polynomial.variable("x", 3)
        assert p.coefficient(Monomial.of("x")) == 3

    def test_zero_coefficients_dropped(self):
        p = Polynomial({Monomial.of("x"): 0, Monomial.of("y"): 2})
        assert p.num_monomials == 1

    def test_duplicate_monomials_combine(self):
        p = Polynomial([(Monomial.of("x"), 2), (Monomial.of("x"), 3)])
        assert p.coefficient(Monomial.of("x")) == 5

    def test_cancelling_terms_vanish(self):
        p = Polynomial([(Monomial.of("x"), 2), (Monomial.of("x"), -2)])
        assert p.num_monomials == 0

    def test_from_terms(self):
        p = Polynomial.from_terms([(2, Monomial.of("x")), (3, Monomial.ONE)])
        assert p.num_monomials == 2

    def test_rejects_non_monomial_keys(self):
        with pytest.raises(TypeError):
            Polynomial({"x": 1})


class TestMeasures:
    def test_num_monomials_is_size(self):
        p = parse("2*x*y + 3*x + 1")
        assert p.num_monomials == 3

    def test_variables(self):
        p = parse("2*x*y + 3*z")
        assert p.variables == {"x", "y", "z"}

    def test_num_variables_is_granularity(self):
        assert parse("x*y + y*z + z*x").num_variables == 3

    def test_constant_has_no_variables(self):
        assert Polynomial.constant(7).num_variables == 0


class TestArithmetic:
    def test_addition_merges(self):
        assert parse("x + y") + parse("x") == parse("2*x + y")

    def test_addition_with_scalar(self):
        assert parse("x") + 3 == parse("x + 3")

    def test_subtraction(self):
        assert parse("2*x") - parse("x") == parse("x")

    def test_negation(self):
        assert -parse("x - y") == parse("y - x")

    def test_scalar_multiplication(self):
        assert parse("x + y") * 2 == parse("2*x + 2*y")

    def test_scalar_multiplication_by_zero(self):
        assert (parse("x + y") * 0).num_monomials == 0

    def test_monomial_multiplication(self):
        assert parse("x + 1") * Monomial.of("y") == parse("x*y + y")

    def test_polynomial_multiplication(self):
        assert parse("x + 1") * parse("x - 1") == parse("x^2 - 1")

    def test_multiplication_is_distributive(self):
        a, b, c = parse("x + y"), parse("z"), parse("w + 2")
        assert a * (b + c) == a * b + a * c


class TestSubstitution:
    def test_merging_substitution_sums_coefficients(self):
        p = parse("2*m1*x + 3*m3*x")
        assert p.substitute({"m1": "q1", "m3": "q1"}) == parse("5*q1*x")

    def test_non_merging_substitution_keeps_size(self):
        p = parse("2*m1*x + 3*m1*y")
        q = p.substitute({"m1": "q1"})
        assert q.num_monomials == 2

    def test_substitution_never_increases_size(self):
        p = parse("a*x + b*y + c*z")
        q = p.substitute({"a": "g", "b": "g", "c": "g"})
        assert q.num_monomials <= p.num_monomials

    def test_substitute_to_existing_variable_merges_exponents(self):
        p = parse("a*b")
        assert p.substitute({"a": "b"}) == parse("b^2")


class TestEvaluation:
    def test_all_ones_recovers_coefficient_sum(self):
        p = parse("2*x*y + 3*z + 1")
        assert p.evaluate({}) == 6.0

    def test_partial_assignment(self):
        p = parse("2*x*y + 3*z")
        assert p.evaluate({"x": 0.5}) == pytest.approx(4.0)

    def test_exponent_evaluation(self):
        assert parse("x^3").evaluate({"x": 2.0}) == 8.0

    def test_zero_polynomial_evaluates_to_zero(self):
        assert Polynomial.zero().evaluate({"x": 5.0}) == 0.0


class TestMisc:
    def test_restricted_to(self):
        p = parse("x*y + y*z + 3")
        q = p.restricted_to({"x", "y"})
        assert q == parse("x*y + 3")

    def test_almost_equal_tolerates_float_noise(self):
        a = parse("x") * 0.1 + parse("x") * 0.2
        b = parse("x") * 0.3
        assert a.almost_equal(b, tolerance=1e-9)

    def test_almost_equal_rejects_different_support(self):
        assert not parse("x").almost_equal(parse("y"))

    def test_iteration_is_sorted_and_typed(self):
        p = parse("2*b + 3*a")
        items = list(p)
        assert items[0] == (3, Monomial.of("a"))

    def test_str_of_zero(self):
        assert str(Polynomial.zero()) == "0"

    def test_equality_and_hash(self):
        assert parse("x + y") == parse("y + x")
        assert hash(parse("x + y")) == hash(parse("y + x"))


class TestNumberTowerCoefficients:
    """Arithmetic must lift any numbers.Number — Fractions especially.

    Regression: the scalar branches of __add__/__sub__/__mul__ used to
    accept only int/float and silently returned NotImplemented for
    fractions.Fraction, despite the class promising Fraction support.
    """

    def test_add_fraction_scalar(self):
        from fractions import Fraction

        p = parse("x") + Fraction(1, 2)
        assert p.coefficient(Monomial.ONE) == Fraction(1, 2)

    def test_radd_and_rsub_fraction_scalar(self):
        from fractions import Fraction

        p = Fraction(3, 4) + parse("x")
        assert p.coefficient(Monomial.ONE) == Fraction(3, 4)
        q = Fraction(3, 4) - parse("x")
        assert q.coefficient(Monomial.ONE) == Fraction(3, 4)
        assert q.coefficient(Monomial.of("x")) == -1

    def test_sub_fraction_scalar(self):
        from fractions import Fraction

        p = parse("x") - Fraction(1, 3)
        assert p.coefficient(Monomial.ONE) == Fraction(-1, 3)

    def test_mul_fraction_scalar_keeps_exactness(self):
        from fractions import Fraction

        p = (parse("x") * 2) * Fraction(1, 3)
        assert p.coefficient(Monomial.of("x")) == Fraction(2, 3)

    def test_fraction_coefficients_cancel_exactly(self):
        from fractions import Fraction

        p = parse("x") * Fraction(1, 3)
        q = p * 3 - parse("x")
        assert not q  # (1/3)*3 - 1 == 0 exactly, no float residue


class TestExactEvaluation:
    """evaluate() must not force Fraction/int arithmetic through floats.

    Regression: the accumulators started from 0.0/1.0, so exact
    Fraction coefficients and assignments were corrupted by rounding.
    """

    def test_fraction_coefficients_and_values_stay_exact(self):
        from fractions import Fraction

        p = Polynomial({
            Monomial.of("x"): Fraction(1, 3),
            Monomial.ONE: Fraction(1, 6),
        })
        value = p.evaluate({"x": Fraction(1, 2)})
        assert value == Fraction(1, 3)
        assert isinstance(value, Fraction)

    def test_monomial_evaluate_preserves_fractions(self):
        from fractions import Fraction

        value = Monomial.of(("x", 2)).evaluate({"x": Fraction(2, 3)})
        assert value == Fraction(4, 9)
        assert isinstance(value, Fraction)

    def test_integer_evaluation_stays_integral(self):
        p = parse("2*x + 3")
        value = p.evaluate({"x": 2}, default=1)
        assert value == 7
        assert isinstance(value, int)
