"""Executable NP-hardness machinery (Appendix A).

Uniformly partitioned polynomials (Def. 16), flat abstractions
(Def. 20), the closed-form counting claims (18/23), and the
vertex-cover reduction (Lemma 29) — all materialized so the tests can
verify the reduction in both directions against a brute-force VC
solver.
"""

from repro.hardness.flat import claim23_counts, flat_abstraction, flat_cut
from repro.hardness.reduction import (
    ReductionInstance,
    build_instance,
    cover_to_cut,
    cut_to_cover,
    decide_vertex_cover_via_abstraction,
)
from repro.hardness.uniform import (
    claim18_sizes,
    meta_name,
    uniformly_partitioned,
    variable_name,
)
from repro.hardness.vertex_cover import (
    Graph,
    has_vertex_cover,
    is_vertex_cover,
    minimum_vertex_cover,
    random_graph,
)

__all__ = [
    "Graph",
    "is_vertex_cover",
    "has_vertex_cover",
    "minimum_vertex_cover",
    "random_graph",
    "uniformly_partitioned",
    "claim18_sizes",
    "meta_name",
    "variable_name",
    "flat_abstraction",
    "flat_cut",
    "claim23_counts",
    "ReductionInstance",
    "build_instance",
    "cover_to_cut",
    "cut_to_cover",
    "decide_vertex_cover_via_abstraction",
]
