"""Abstraction trees (§2.2).

An *abstraction tree* is a rooted tree with uniquely-labelled nodes.
Leaves are labelled with provenance variables; internal nodes are
labelled with *meta-variables* that do not occur in the polynomials.
Replacing all leaves below an internal node by that node's label is the
elementary "abstraction" step; a full abstraction is a *cut* in the tree
(see :mod:`repro.core.forest` for valid variable sets).

The module also implements:

* ``clean`` — the paper's footnote 1: leaves that do not occur in the
  polynomials are removed, and internal nodes left with a single child
  are spliced out (Example 13's answer depends on this).
* ``count_cuts`` / ``iter_cuts`` — the number of valid variable sets of
  a tree is ``1`` for a leaf and ``1 + Π_children count`` for an
  internal node; Table 2 of the paper tabulates exactly these values.
"""

from __future__ import annotations

__all__ = ["TreeNode", "AbstractionTree"]


class TreeNode:
    """A node of an abstraction tree."""

    __slots__ = ("label", "children", "parent")

    def __init__(self, label, children=None):
        self.label = str(label)
        self.children = list(children) if children else []
        self.parent = None
        for child in self.children:
            child.parent = self

    @property
    def is_leaf(self):
        return not self.children

    def add_child(self, node):
        node.parent = self
        self.children.append(node)
        return node

    def __repr__(self):
        return f"TreeNode({self.label!r}, {len(self.children)} children)"


class AbstractionTree:
    """A rooted, uniquely-labelled abstraction tree.

    Construction is most convenient via :meth:`from_nested`, which takes
    a nested spec — a string for a leaf, or ``(label, [children])``:

    >>> t = AbstractionTree.from_nested(
    ...     ("Year", [("q1", ["m1", "m2", "m3"]), ("q2", ["m4", "m5", "m6"])]))
    >>> sorted(t.leaf_labels)
    ['m1', 'm2', 'm3', 'm4', 'm5', 'm6']
    >>> t.count_cuts()
    5
    """

    __slots__ = ("root", "nodes")

    def __init__(self, root):
        self.root = root
        self.nodes = {}
        self._index(root)

    def _index(self, node):
        stack = [node]
        while stack:
            current = stack.pop()
            if current.label in self.nodes:
                raise ValueError(f"duplicate node label {current.label!r}")
            self.nodes[current.label] = current
            stack.extend(current.children)

    @classmethod
    def from_nested(cls, spec):
        """Build a tree from a nested spec (str leaf or ``(label, children)``)."""
        return cls(cls._build(spec))

    @staticmethod
    def _build(spec):
        if isinstance(spec, str):
            return TreeNode(spec)
        if isinstance(spec, tuple) and len(spec) == 2:
            label, children = spec
            return TreeNode(label, [AbstractionTree._build(c) for c in children])
        raise TypeError(f"bad tree spec: {spec!r}")

    # -------------------------------------------------------------- queries

    def __contains__(self, label):
        return label in self.nodes

    def node(self, label):
        """The node with the given label (KeyError if absent)."""
        return self.nodes[label]

    @property
    def labels(self):
        """``V(T)`` — all node labels (variables and meta-variables)."""
        return set(self.nodes)

    @property
    def leaves(self):
        """Leaf nodes in depth-first order (deterministic)."""
        out = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(reversed(node.children))
        return out

    @property
    def leaf_labels(self):
        """``L(T)`` — the labels of the leaves."""
        return {node.label for node in self.leaves}

    def is_leaf(self, label):
        """Is ``label`` a leaf of this tree?"""
        return self.nodes[label].is_leaf

    def parent(self, label):
        """The parent label of ``label`` (None for the root)."""
        node = self.nodes[label].parent
        return node.label if node else None

    def children(self, label):
        """The child labels of ``label``."""
        return [child.label for child in self.nodes[label].children]

    def ancestors(self, label, include_self=False):
        """Labels on the path from ``label`` to the root (root last)."""
        out = [label] if include_self else []
        node = self.nodes[label].parent
        while node is not None:
            out.append(node.label)
            node = node.parent
        return out

    def descendants(self, label, include_self=False):
        """All labels strictly below ``label`` (plus itself if requested)."""
        out = [label] if include_self else []
        stack = list(self.nodes[label].children)
        while stack:
            node = stack.pop()
            out.append(node.label)
            stack.extend(node.children)
        return out

    def is_descendant(self, lower, upper):
        """The paper's ``lower ≤_T upper`` (reflexive descendant relation)."""
        if lower not in self.nodes or upper not in self.nodes:
            return False
        node = self.nodes[lower]
        while node is not None:
            if node.label == upper:
                return True
            node = node.parent
        return False

    def leaves_under(self, label):
        """Leaf labels in the subtree rooted at ``label``."""
        node = self.nodes[label]
        if node.is_leaf:
            return [node.label]
        out = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.append(current.label)
            else:
                stack.extend(reversed(current.children))
        return out

    def lca(self, label_a, label_b):
        """Lowest common ancestor of two labels."""
        ancestors_a = set(self.ancestors(label_a, include_self=True))
        node = self.nodes[label_b]
        while node is not None:
            if node.label in ancestors_a:
                return node.label
            node = node.parent
        raise ValueError(f"{label_a!r} and {label_b!r} share no ancestor")

    @property
    def size(self):
        """Number of nodes (``n`` in the paper's complexity bound)."""
        return len(self.nodes)

    @property
    def height(self):
        """Length (in edges) of the longest root-to-leaf path."""

        def depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(depth(child) for child in node.children)

        return depth(self.root)

    @property
    def width(self):
        """Maximum fan-out (``w`` in the paper's complexity bound)."""
        return max(
            (len(node.children) for node in self.nodes.values()),
            default=0,
        )

    # ------------------------------------------------------- cut machinery

    def count_cuts(self):
        """The number of valid variable sets of this tree.

        ``count(leaf) = 1``; ``count(v) = 1 + Π count(child)``. These are
        exactly the "VVS" column values of the paper's Table 2.
        """

        def count(node):
            if node.is_leaf:
                return 1
            product = 1
            for child in node.children:
                product *= count(child)
            return 1 + product

        return count(self.root)

    def iter_cuts(self):
        """Yield every cut of the tree as a frozenset of labels.

        The number of cuts is exponential in general — callers should
        consult :meth:`count_cuts` first (the brute-force baseline does).
        """

        def cuts(node):
            yield frozenset([node.label])
            if node.is_leaf:
                return
            # Cartesian product of children cuts, streamed.
            def product(children):
                if not children:
                    yield frozenset()
                    return
                head, tail = children[0], children[1:]
                for head_cut in cuts(head):
                    for tail_cut in product(tail):
                        yield head_cut | tail_cut

            yield from product(node.children)

        return cuts(self.root)

    # -------------------------------------------------------------- cleaning

    def clean(self, variables):
        """Footnote 1: restrict the tree to leaves in ``variables``.

        Removes absent leaves, then recursively removes internal nodes
        left childless and splices internal nodes left with exactly one
        child (the child survives, as in Example 13 where ``Standard``
        collapses to ``p1`` and ``Year`` to ``q1``).

        Returns a new tree, or ``None`` if no leaf survives.
        """
        variables = set(variables)

        def rebuild(node):
            if node.is_leaf:
                return TreeNode(node.label) if node.label in variables else None
            kept = [c for c in (rebuild(child) for child in node.children) if c]
            if not kept:
                return None
            if len(kept) == 1:
                return kept[0]
            return TreeNode(node.label, kept)

        new_root = rebuild(self.root)
        return AbstractionTree(new_root) if new_root is not None else None

    def copy(self):
        """A structural deep copy."""

        def rebuild(node):
            return TreeNode(node.label, [rebuild(child) for child in node.children])

        return AbstractionTree(rebuild(self.root))

    def to_nested(self):
        """Inverse of :meth:`from_nested`."""

        def build(node):
            if node.is_leaf:
                return node.label
            return (node.label, [build(child) for child in node.children])

        return build(self.root)

    def __repr__(self):
        return (
            f"AbstractionTree(root={self.root.label!r}, size={self.size}, "
            f"leaves={len(self.leaves)})"
        )
