"""The content-addressed artifact store behind the what-if service.

Artifacts are compressed once (``POST /artifacts``), persisted as
binary ``.rpb`` containers (:mod:`repro.core.binfmt`), and addressed by
the SHA-256 of their container bytes — the write is deterministic
(sorted-key header, fixed buffer layout), so the same compression
result always yields the same id, and re-uploading an identical
artifact is a no-op that returns the existing id.

Serving state is a size-bounded LRU of :class:`~repro.service.warm.\
WarmArtifact` entries keyed by that hash. Entries are **mmap-backed**:
evicting one drops Python wrappers and lets the OS reclaim the page
cache, and re-admitting it is an O(1) re-map plus the warm-index build
— no deserialization of polynomial objects either way. Hit/miss/
eviction counters feed ``GET /healthz``.

The store is crash-safe. Start-up scans the spool: orphaned
``mkstemp`` temp files (a writer killed mid-``put``) are reaped, and
any ``.rpb`` whose bytes no longer hash to its filename — truncated by
a crash, or corrupted on disk — is moved into ``spool/quarantine/``
rather than served or deleted; a ``kill -9`` mid-put can cost the
in-flight artifact but never poisons the store. ``put`` itself
verifies each freshly spooled container by decoding it, and retries a
failed or corrupted write under the shared
:class:`~repro.util.retry.RetryPolicy` (fault site
``store.spool_write`` lets chaos tests corrupt exactly one write and
watch the retry recover bit-identically).
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ArtifactNotFound, SerializeError
from repro.faults import InjectedFault, inject
from repro.service.warm import WarmArtifact
from repro.util.retry import RetryPolicy

if TYPE_CHECKING:
    from repro.api.artifact import CompressedProvenance

__all__ = ["ArtifactStore"]

#: Store ids are the full SHA-256 hex digest of the container bytes.
_ID_PATTERN = re.compile(r"^[0-9a-f]{64}$")

#: Spool writes are local-disk fast; short, tightly capped backoff.
_DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.25)


class ArtifactStore:
    """A spool directory of ``.rpb`` containers + an LRU of warm entries.

    :param root: spool directory (created if missing); one
        ``<sha256>.rpb`` file per artifact. Recovered on construction
        (see the module docstring).
    :param capacity: maximum *resident* (warm, mmap-backed) artifacts;
        least-recently-used entries are evicted past that — their spool
        files stay, so a later request re-maps them on demand.
    :param retry: the :class:`~repro.util.retry.RetryPolicy` for spool
        writes (default: 3 attempts, 20 ms base, 250 ms cap).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        capacity: int = 8,
        retry: RetryPolicy | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)
        self.retry = _DEFAULT_RETRY if retry is None else retry
        self._entries: OrderedDict[str, WarmArtifact] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self.reaped_temps = 0
        self._recover()

    # ------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Crash-safe start-up: reap temp files, quarantine bad spools.

        A truncated or tampered ``.rpb`` is *moved*, not deleted — the
        bytes stay available for forensics under ``quarantine/`` — and
        a misnamed one (filename is not a content hash) goes with it.
        """
        for orphan in self.root.glob(".incoming-*"):
            orphan.unlink(missing_ok=True)
            self.reaped_temps += 1
        for path in sorted(self.root.glob("*.rpb")):
            stem = path.name[: -len(".rpb")]
            if _ID_PATTERN.fullmatch(stem) and _hash_file(path) == stem:
                continue
            self._quarantine(path)

    def _quarantine(self, path: Path) -> None:
        """Move a bad spool file into ``quarantine/`` (idempotent)."""
        if not path.exists():
            return
        target = self.root / "quarantine"
        target.mkdir(exist_ok=True)
        os.replace(path, target / path.name)
        self.quarantined += 1

    # --------------------------------------------------------------- writes

    #: ``put`` retries these: I/O failures, containers that will not
    #: decode back (torn/corrupted writes), and injected chaos faults.
    _RETRYABLE = (OSError, SerializeError, InjectedFault)

    def put(
        self,
        artifact: CompressedProvenance,
        *,
        warm_from: WarmArtifact | None = None,
    ) -> str:
        """Persist ``artifact`` and return its content-hash id.

        The container is written to a temp file in the spool directory,
        hashed, and atomically renamed to ``<sha256>.rpb`` — concurrent
        writers of the same artifact race benignly (same bytes, same
        name). The freshly spooled container is then decoded back as
        verification; a write that fails or will not decode is
        quarantined and retried under :attr:`retry`, so one flaky write
        never surfaces to the client. The stored entry is reloaded
        mmap-backed so the resident copy is the cheap-to-evict one, not
        the builder's object graph.

        :param warm_from: the warm entry the artifact was mutated from
            (the ``POST /artifacts/{id}/extend`` path). When the cut is
            unchanged, the new entry is built with
            :meth:`WarmArtifact.repaired
            <repro.service.warm.WarmArtifact.repaired>` — the lift
            index carries over instead of being rebuilt from the tree.
        """
        last_error: BaseException | None = None
        for attempt in range(1, self.retry.attempts + 1):
            try:
                artifact_id = self._spool(artifact)
            except self._RETRYABLE as error:
                last_error = error
            else:
                if artifact_id in self._entries:
                    return artifact_id
                try:
                    loaded = self._load_verified(artifact_id)
                except self._RETRYABLE as error:
                    self._quarantine(self.path_of(artifact_id))
                    last_error = error
                else:
                    if (
                        warm_from is not None
                        and warm_from.artifact.vvs.labels == loaded.vvs.labels
                    ):
                        entry = warm_from.repaired(loaded)
                    else:
                        entry = WarmArtifact(loaded)
                    self._admit(artifact_id, entry)
                    return artifact_id
            if attempt < self.retry.attempts:
                time.sleep(self.retry.delay(attempt, "store-put"))
        raise SerializeError(
            f"artifact spool write failed after {self.retry.attempts} "
            f"attempts: {last_error}"
        ) from last_error

    def _spool(self, artifact: CompressedProvenance) -> str:
        """One write attempt: temp file → hash → atomic rename."""
        from repro.core import binfmt

        handle, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".incoming-", suffix=".rpb"
        )
        try:
            os.close(handle)
            tmp = Path(tmp_name)
            binfmt.write_artifact(artifact, tmp)
            inject("store.spool_write", path=tmp)
            artifact_id = _hash_file(tmp)
            os.replace(tmp, self.path_of(artifact_id))
        finally:
            Path(tmp_name).unlink(missing_ok=True)
        return artifact_id

    # ---------------------------------------------------------------- reads

    def get(self, artifact_id: str) -> WarmArtifact:
        """The warm entry for ``artifact_id`` (LRU-promoted).

        Resident entries return immediately; spooled ones are re-mapped
        and re-warmed (a *miss*). Unknown ids — malformed, or with no
        spool file — raise :class:`~repro.errors.ArtifactNotFound`.
        """
        entry = self._entries.get(artifact_id)
        if entry is not None:
            self._entries.move_to_end(artifact_id)
            self.hits += 1
            return entry
        if not _ID_PATTERN.fullmatch(artifact_id):
            raise ArtifactNotFound(
                f"invalid artifact id {artifact_id!r} (expected the "
                "64-hex-digit content hash returned by POST /artifacts)"
            )
        if not self.path_of(artifact_id).exists():
            raise ArtifactNotFound(f"no artifact {artifact_id!r} in the store")
        self.misses += 1
        entry = self._map(artifact_id)
        self._admit(artifact_id, entry)
        return entry

    def __contains__(self, artifact_id: str) -> bool:
        return artifact_id in self._entries or (
            bool(_ID_PATTERN.fullmatch(artifact_id))
            and self.path_of(artifact_id).exists()
        )

    def path_of(self, artifact_id: str) -> Path:
        """The spool path of ``artifact_id`` (existing or not)."""
        return self.root / f"{artifact_id}.rpb"

    def stats(self) -> dict[str, object]:
        """Cache counters and occupancy, JSON-ready (for ``/healthz``)."""
        return {
            "capacity": self.capacity,
            "resident": len(self._entries),
            "spooled": sum(1 for _ in self.root.glob("*.rpb")),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "reaped_temps": self.reaped_temps,
        }

    # ------------------------------------------------------------ internals

    def _map(self, artifact_id: str) -> WarmArtifact:
        """A cold warm entry for ``artifact_id`` (see :meth:`_load_verified`)."""
        return WarmArtifact(self._load_verified(artifact_id))

    def _load_verified(self, artifact_id: str) -> CompressedProvenance:
        """Load ``artifact_id``'s container mmap-backed, verifying that
        the bytes still hash to the id (a spool file corrupted or
        swapped behind the store's back must not serve under the old
        content address)."""
        from repro.api.artifact import CompressedProvenance

        path = self.path_of(artifact_id)
        inject("store.map", path=path)
        actual = _hash_file(path)
        if actual != artifact_id:
            raise SerializeError(
                f"content hash mismatch for artifact {artifact_id!r}: the "
                f"spool file hashes to {actual!r} — the container was "
                "modified after it was stored"
            )
        return CompressedProvenance.load(path, mmap=True)

    def _admit(self, artifact_id: str, entry: WarmArtifact) -> None:
        self._entries[artifact_id] = entry
        self._entries.move_to_end(artifact_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1


def _hash_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()
