"""Property-based tests for the K-relation engine (semiring laws lifted).

The semiring model's point: relational identities hold *up to
annotations*. These tests check the liftings — union associativity and
commutativity, join commutativity (modulo column order), selection/
projection interactions — over bag (N) and provenance (N[X])
annotations, plus the invariant that the competitor's merges and the
aggregate's polynomials preserve total value.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import Relation, aggregate_sum, join, project, rename, select, union
from repro.semiring import PROVENANCE

keys = st.integers(0, 4)
values = st.sampled_from(["a", "b", "c"])
rows = st.lists(st.tuples(keys, values), max_size=8)


def _relation(row_list, prefix=None):
    relation = Relation.from_rows(["k", "v"], row_list)
    if prefix is not None:
        relation = relation.with_tuple_variables(prefix)
    return relation


class TestUnionLaws:
    @given(rows, rows)
    def test_union_commutes(self, left_rows, right_rows):
        left = _relation(left_rows)
        right = _relation(right_rows)
        assert union(left, right) == union(right, left)

    @given(rows, rows, rows)
    @settings(max_examples=40)
    def test_union_associates(self, a_rows, b_rows, c_rows):
        a, b, c = _relation(a_rows), _relation(b_rows), _relation(c_rows)
        assert union(union(a, b), c) == union(a, union(b, c))

    @given(rows)
    def test_union_with_empty_is_identity(self, row_list):
        relation = _relation(row_list)
        empty = Relation(["k", "v"])
        assert union(relation, empty) == relation


class TestJoinLaws:
    @given(rows, rows)
    @settings(max_examples=40)
    def test_join_annotations_commute(self, left_rows, right_rows):
        """Join is commutative on annotations (schemas permute)."""
        left = _relation(left_rows, "l")
        right = rename(_relation(right_rows, "r"), {"v": "w"})
        forward = join(left, right, on="k")
        backward = join(right, left, on="k")
        forward_by_key = {
            (row[0], row[1], row[2]): annotation
            for row, annotation in forward
        }
        backward_by_key = {
            (row[0], row[2], row[1]): annotation
            for row, annotation in backward
        }
        assert forward_by_key == backward_by_key

    @given(rows)
    @settings(max_examples=40)
    def test_selection_commutes_with_join(self, row_list):
        left = _relation(row_list, "l")
        right = rename(_relation(row_list, "r"), {"v": "w"})
        def predicate(row):
            return row["k"] >= 2
        select_then_join = join(select(left, predicate), right, on="k")
        join_then_select = select(join(left, right, on="k"), predicate)
        assert select_then_join == join_then_select

    @given(rows)
    @settings(max_examples=40)
    def test_projection_sums_join_annotations(self, row_list):
        """π_k(R ⋈ S) annotations equal the ⊕ of matched ⊗-products."""
        left = _relation(row_list, "l")
        right = rename(_relation(row_list, "r"), {"v": "w"})
        joined = join(left, right, on="k")
        projected = project(joined, ["k"])
        for row, annotation in projected:
            manual = PROVENANCE.sum(
                a for full_row, a in joined if full_row[0] == row[0]
            )
            assert annotation == manual


class TestAggregateValuePreservation:
    @given(rows)
    @settings(max_examples=40)
    def test_polynomial_at_ones_equals_plain_sum(self, row_list):
        relation = Relation.from_rows(
            ["g", "x"], [(k, float(k) + 1.5) for k, _ in row_list]
        )
        result = aggregate_sum(
            relation, ["g"], "x", params=lambda row: [f"v{row['g']}"]
        )
        plain = {}
        for (g, x), multiplicity in relation.rows.items():
            plain[g] = plain.get(g, 0.0) + x * multiplicity
        for (g,), polynomial in result:
            assert abs(polynomial.evaluate({}) - plain[g]) < 1e-9


class TestCompetitorValuePreservation:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_summarization_preserves_all_ones_value(self, seed):
        """[3]'s merges sum coefficients, so the all-ones valuation of
        every polynomial is invariant — the summary never changes the
        baseline answer, only the achievable scenarios."""
        from repro.algorithms.competitor import summarize
        from repro.workloads.random_polys import random_compatible_instance

        polys, forest = random_compatible_instance(
            seed=seed, num_trees=2, leaves_per_tree=4,
            num_polynomials=3, monomials_per_polynomial=8,
        )
        result = summarize(polys, forest, bound=1)
        assert len(result.polynomials) == len(polys)
        for before, after in zip(polys, result.polynomials, strict=True):
            assert abs(before.evaluate({}) - after.evaluate({})) < 1e-6


class TestAbstractionValuePreservation:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_every_cut_preserves_all_ones_value(self, seed):
        """P↓S sums coefficients of merged monomials, so the neutral
        valuation (all variables 1) is invariant under ANY abstraction."""
        from hypothesis import assume
        from repro.workloads.random_polys import random_compatible_instance

        polys, forest = random_compatible_instance(
            seed=seed, num_trees=2, leaves_per_tree=4,
            num_polynomials=2, monomials_per_polynomial=6,
        )
        assume(forest.count_cuts() <= 100)
        for vvs in forest.iter_cuts():
            abstracted = vvs.apply(polys)
            for before, after in zip(polys, abstracted, strict=True):
                assert abs(before.evaluate({}) - after.evaluate({})) < 1e-6
