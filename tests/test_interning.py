"""Tests for the variable interning table and the id-keyed Monomial."""

from repro.core.interning import SENTINEL_ID, VARIABLES, VariableTable
from repro.core.polynomial import Monomial, Polynomial


class TestVariableTable:
    def test_intern_is_idempotent(self):
        table = VariableTable()
        assert table.intern("x") == table.intern("x")

    def test_ids_are_dense_in_first_seen_order(self):
        table = VariableTable()
        assert [table.intern(v) for v in ("a", "b", "a", "c")] == [0, 1, 0, 2]

    def test_name_roundtrip(self):
        table = VariableTable()
        vid = table.intern("month")
        assert table.name(vid) == "month"

    def test_lookup_without_interning(self):
        table = VariableTable()
        assert table.lookup("never-seen") is None
        table.intern("seen")
        assert table.lookup("seen") is not None

    def test_contains_and_len(self):
        table = VariableTable()
        table.intern("x")
        assert "x" in table and "y" not in table
        assert len(table) == 1

    def test_intern_mapping(self):
        table = VariableTable()
        id_map = table.intern_mapping({"b1": "SB", "b2": "SB"})
        assert id_map[table.lookup("b1")] == table.lookup("SB")
        assert id_map[table.lookup("b2")] == table.lookup("SB")

    def test_sentinel_can_never_collide(self):
        # Ids are dense from 0; the residual-key sentinel is negative.
        assert SENTINEL_ID < 0


class TestMonomialKey:
    def test_key_is_id_sorted_and_consistent(self):
        m = Monomial.of("z", "a", ("m", 2))
        assert sorted(m.key) == list(m.key)
        assert {VARIABLES.name(vid) for vid, _ in m.key} == {"z", "a", "m"}
        assert {VARIABLES.name(vid): e for vid, e in m.key} == dict(m.powers)

    def test_equal_monomials_share_key(self):
        assert Monomial.of("x", "y").key == Monomial.of("y", "x").key

    def test_powers_stay_name_sorted(self):
        # The string-facing view is sorted by name even when interning
        # order differs (z interned before a here).
        m = Monomial.of("zz9", "aa0")
        assert [v for v, _ in m.powers] == ["aa0", "zz9"]

    def test_from_key_matches_public_constructor(self):
        original = Monomial.of(("x", 2), "y")
        rebuilt = Monomial._from_key(original.key)
        assert rebuilt == original
        assert hash(rebuilt) == hash(original)
        assert rebuilt.powers == original.powers

    def test_exponent_and_contains_on_uninterned_variable(self):
        m = Monomial.of("x")
        probe = "completely-fresh-variable-name-xyz"
        assert m.exponent(probe) == 0
        assert probe not in m

    def test_substitute_ids(self):
        m = Monomial.of("m1", "x")
        id_map = VARIABLES.intern_mapping({"m1": "q1"})
        assert m.substitute_ids(id_map) == Monomial.of("q1", "x")


class TestPolynomialIdCaches:
    def test_variable_ids_match_variables(self):
        p = Polynomial({Monomial.of("a", "b"): 1, Monomial.of("c"): 2})
        names = {VARIABLES.name(vid) for vid in p.variable_ids()}
        assert names == p.variables == {"a", "b", "c"}

    def test_cache_is_stable_across_queries(self):
        p = Polynomial({Monomial.of("a"): 1})
        first = p.variable_ids()
        assert p.variable_ids() is first
        assert p.num_variables == 1
