"""Perf regression benchmark: the hot paths, before vs after, as JSON.

Times the hot layers of the system on standard synthetic workloads and
writes ``BENCH_core.json`` at the repository root so every PR leaves a
perf trajectory behind:

* **greedy** — the incremental lazy-priority-queue :func:`greedy_vvs`
  against the retained full-rescan :func:`_reference_greedy` (same cuts,
  asserted);
* **optimal** — Algorithm 1 end to end (trajectory only);
* **abstraction** — ``P↓S`` materialization and the counting-only
  ``abstract_counts`` (trajectory only);
* **batch valuation** — a 256-scenario suite through
  ``PolynomialSet.evaluate_batch`` against the per-scenario interpreter
  loop (same values, asserted);
* **sweep** — a seeded Monte-Carlo ``Sweep`` evaluated serially vs.
  sharded across a process pool (bit-identical matrices, asserted),
  plus streaming ``top_k`` over the sweep;
* **sweep_delta** — a one-at-a-time sweep over the full alphabet
  evaluated with ``engine="dense"`` vs. ``engine="delta"`` (baseline +
  sparse per-scenario patches; bit-identical matrices, asserted) — the
  small-delta workload the paper's repeated-modification premise
  implies, with a contract floor of 5x;
* **compress_scale** — end-to-end ``ProvenanceSession.compress`` on a
  dedicated 10x-scale provenance (~100k monomials in ``full`` mode):
  the object backend (tuple-walking reference) against the columnar
  flat-array core, artifacts asserted identical (same VVS, same
  ML/VL, same monomial structure), with a contract floor of 5x;
* **incremental** — live-artifact maintenance at the compress_scale
  workload: appending a ~10% batch of polynomials via the repair-path
  ``CompressedProvenance.refresh`` (delta abstraction + in-place
  columnar/compiled repair, see ``repro.api.mutation``) against a
  from-scratch ``ProvenanceSession.compress`` over the extended
  provenance — the repaired artifact's ``ask_many`` answers asserted
  bit-identical to a from-scratch recompress at the same cut, with a
  contract floor of 5x;
* **artifact_io** — loading a saved artifact at the compress_scale
  workload: the JSON envelope (full parse + object rebuild) against
  the binary ``.rpb`` container (``mmap`` + O(1) header read, NumPy
  views over the map; see ``repro.core.binfmt``) — answers asserted
  bit-identical across the original and both reloads, with a
  contract floor of 10x;
* **session** — the end-to-end facade: ``ProvenanceSession`` →
  ``compress`` (auto policy) → ``ask_many`` over the suite, plus the
  artifact's JSON round-trip (reloaded artifact answers asserted
  identical);
* **service** — the what-if HTTP server (``repro.service``) under a
  16-client closed-loop single-scenario barrage: naive per-request
  facade dispatch (``window=0``, no warm index) against the production
  serving stack (micro-batch coalescing + the per-artifact lift
  index), answers asserted bit-identical to direct ``ask_many``, with
  a contract floor of 3x; also records p50/p99 latency and the
  coalesced batch-size histogram.

The JSON document (schema ``repro-bench-core/8``) keys one run entry
per mode under ``runs`` and merges into an existing file, so the
checked-in baseline can carry the ``full`` trajectory *and* the
``smoke`` entry CI gates on. ``--check BASELINE`` compares the current
run's speedup/error fields against the same-mode entry of a committed
baseline and exits non-zero on regression (see
:data:`CHECK_FIELDS`) — the CI perf gate. ``--stage NAME``
(repeatable) runs a subset of stages — partial runs merge their
results into the output's existing same-mode entry and the gate only
checks the stages that ran.

Self-contained on purpose: imports only ``repro`` and the standard
library, so ``python -m repro bench`` can run it from a checkout
without the rest of the experiment harness. Modes:

* default (``full``) — the scales quoted in BENCHMARKS.md;
* ``--smoke`` — finishes in well under 30 s, same code paths;
* ``--tiny`` — seconds; used by the test suite to exercise the bench.

Usage::

    python benchmarks/bench_regression.py [--smoke | --tiny]
        [--repeat N] [--output PATH] [--quiet]
        [--check BASELINE [--tolerance 0.35]]
    python -m repro bench [same flags]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro.algorithms.greedy import _reference_greedy, greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.api.session import ProvenanceSession
from repro.core import serialize
from repro.core.abstraction import abstract, abstract_counts
from repro.core.forest import AbstractionForest
from repro.core.valuation import Valuation
from repro.options import EvalOptions
from repro.scenarios.analysis import top_k
from repro.scenarios.parallel import evaluate_scenarios_parallel
from repro.scenarios.sweep import Sweep
from repro.util.rng import derive_rng
from repro.util.timing import time_call
from repro.workloads.random_polys import random_polynomials
from repro.workloads.trees import layered_tree

SCHEMA = "repro-bench-core/8"

#: Stage names accepted by ``--stage`` (run order is fixed).
STAGES = (
    "greedy",
    "optimal",
    "abstraction",
    "batch_valuation",
    "sweep",
    "sweep_delta",
    "compress_scale",
    "incremental",
    "artifact_io",
    "session",
    "service",
)

#: Workload scales per mode: (pool leaves, tree fanouts, #polynomials,
#: monomials per polynomial, free variables, #scenarios, sweep size).
#: ``delta_polynomials``/``delta_monomials`` size the dedicated
#: sweep_delta provenance — full-scale even under ``--smoke`` (the
#: stage costs well under a second either way), so the CI smoke gate
#: enforces the delta engine's 5x contract at the scale where it is
#: stated rather than a toy ratio.
MODES = {
    "full": dict(
        leaves=512, fanouts=(4, 4, 4, 4), polynomials=80,
        monomials=120, free_variables=40, scenarios=256,
        sweep_scenarios=49152, sweep_changes=20,
        delta_polynomials=80, delta_monomials=120,
        # 10x the main workload: ~100k monomials, the scale the
        # columnar compression core's 5x contract is stated for.
        compress_polynomials=800, compress_monomials=120,
        service_clients=16, service_requests=512,
        service_polynomials=16, service_monomials=2400,
        service_leaves=2048, service_fanouts=(4, 4, 4, 4, 4),
    ),
    "smoke": dict(
        leaves=256, fanouts=(4, 4, 4), polynomials=30,
        monomials=60, free_variables=20, scenarios=256,
        sweep_scenarios=24576, sweep_changes=20,
        delta_polynomials=80, delta_monomials=120,
        # Reduced but still far above the columnar auto threshold
        # (~38k monomials), so the gated ratio is not sub-ms jitter.
        compress_polynomials=320, compress_monomials=120,
        # The full 16-client fleet and artifact scale even in smoke —
        # the 3x coalescing contract is stated at that concurrency on
        # a serving-sized artifact (wide alphabet, deep hierarchy:
        # that is what makes the naive arm's per-request lift walk
        # expensive); fewer requests only shortens the run.
        service_clients=16, service_requests=192,
        service_polynomials=16, service_monomials=2400,
        service_leaves=2048, service_fanouts=(4, 4, 4, 4, 4),
    ),
    "tiny": dict(
        leaves=32, fanouts=(4, 4), polynomials=6,
        monomials=15, free_variables=5, scenarios=16,
        sweep_scenarios=96, sweep_changes=5,
        # Larger than the rest of tiny on purpose: the stage's gated
        # quantity is a ratio of two timings, and sub-ms arms would
        # make the tiny self-check tests jitter-flaky.
        delta_polynomials=30, delta_monomials=120,
        compress_polynomials=12, compress_monomials=30,
        service_clients=4, service_requests=16,
        service_polynomials=4, service_monomials=120,
        service_leaves=64, service_fanouts=(4, 4),
    ),
}

#: The (stage, field, direction, floor_cap, min_cpus) tuples
#: ``--check`` gates on. Only dimensionless ratios and error bounds are
#: compared — raw seconds are machine-dependent, speedups of two
#: timings on the *same* machine mostly are not. ``sweep.speedup`` is
#: the exception: it scales with core count, so its required floor is
#: capped at the 2× multi-core contract — a baseline regenerated on a
#: many-core box must not demand many-core ratios from a 4-core CI
#: runner — and gated only when the checked run has ``min_cpus`` cores
#: (a 1-core box honestly records the pool overhead as a sub-1x ratio;
#: the number stays in the entry, the gate just doesn't fail on it).
#: ``sweep_delta.speedup`` is capped at its 5× contract the same way:
#: the delta engine must beat dense by at least 5× on the
#: one-at-a-time stage, but a baseline from a machine where it beats
#: it by far more must not demand that margin everywhere.
CHECK_FIELDS = (
    ("greedy", "speedup", "higher", None, None),
    ("batch_valuation", "speedup", "higher", None, None),
    ("batch_valuation", "max_abs_error", "lower", None, None),
    ("sweep", "speedup", "higher", 2.0, 2),
    ("sweep", "max_abs_error", "lower", None, None),
    ("sweep_delta", "speedup", "higher", 5.0, None),
    ("sweep_delta", "max_abs_error", "lower", None, None),
    # The columnar compression core must beat the object path by at
    # least its 5x contract; the cap keeps a fast-box baseline from
    # demanding more than the contract elsewhere.
    ("compress_scale", "speedup", "higher", 5.0, None),
    # Repair-path extend (delta abstraction + in-place index repair)
    # must beat a from-scratch recompress of the extended provenance by
    # at least 5x at compress_scale workload size — the incremental
    # maintenance contract of ``repro.api.mutation``.
    ("incremental", "speedup", "higher", 5.0, None),
    # mmap loads must beat JSON parsing by 10x at compress_scale
    # workload size — the zero-copy container's contract.
    ("artifact_io", "speedup", "higher", 10.0, None),
    # The serving stack (micro-batch coalescing + the per-artifact warm
    # lift index) must answer a 16-client single-scenario barrage at
    # least 3x faster than naive per-request facade dispatch, with
    # bit-identical answers (asserted in the stage).
    ("service", "speedup", "higher", 3.0, None),
)

#: Default allowed relative regression for ``--check``.
DEFAULT_TOLERANCE = 0.35

#: The second (months-style) hierarchy of the greedy forest workload.
SIDE_TREE_LEAVES = 12


def build_workload(mode, seed=3):
    """(provenance, forest, single tree) for the given mode.

    Shape follows the paper's experiments: one deep hierarchy over a
    large alphabet (the TPC-H supplier tree of Figure 4) plus one small
    flat hierarchy (the months of Figure 3), with free variables
    playing the non-abstracted indeterminates.
    """
    spec = MODES[mode]
    pool = [f"s{i}" for i in range(spec["leaves"])]
    side_pool = [f"m{i}" for i in range(SIDE_TREE_LEAVES)]
    provenance = random_polynomials(
        spec["polynomials"],
        spec["monomials"],
        [pool, side_pool],
        seed=seed,
        extra_variables=spec["free_variables"],
    )
    main_tree = layered_tree(pool, spec["fanouts"], prefix="sup")
    side_tree = layered_tree(side_pool, (4,), prefix="q")
    forest = AbstractionForest([main_tree, side_tree]).clean(provenance)
    single = main_tree.clean(provenance.variables)
    return provenance, forest, single


def build_scenarios(provenance, count, changes=20, seed=11):
    """Random multiplicative scenarios over the provenance alphabet."""
    rng = derive_rng(seed, "bench_regression")
    variables = sorted(provenance.variables)
    return [
        Valuation({
            variables[rng.randrange(len(variables))]: rng.uniform(0.5, 1.5)
            for _ in range(changes)
        })
        for _ in range(count)
    ]


def _trace_tuples(result):
    return [
        (s.chosen, s.delta_ml, s.delta_vl, s.cumulative_ml, s.cumulative_vl)
        for s in result.trace
    ]


def bench_greedy(provenance, forest, repeat):
    bound = max(1, provenance.num_monomials // 3)
    ref_seconds, ref = time_call(
        _reference_greedy, provenance, forest, bound, clean=False, repeat=repeat
    )
    inc_seconds, inc = time_call(
        greedy_vvs, provenance, forest, bound, clean=False, repeat=repeat
    )
    if _trace_tuples(ref) != _trace_tuples(inc) or ref.vvs.labels != inc.vvs.labels:
        raise AssertionError("incremental greedy diverged from the reference")
    return {
        "bound": bound,
        "monomials": provenance.num_monomials,
        "variables": provenance.num_variables,
        "rounds": len(inc.trace),
        "seconds_reference": ref_seconds,
        "seconds_incremental": inc_seconds,
        "speedup": ref_seconds / inc_seconds if inc_seconds else float("inf"),
    }


def bench_optimal(provenance, tree, repeat):
    forest = AbstractionForest([tree])
    root_size, _ = abstract_counts(provenance, forest.root_vvs().mapping())
    total = provenance.num_monomials
    bound = max(1, total - (total - root_size) // 2)
    seconds, result = time_call(
        optimal_vvs, provenance, tree, bound, clean=False, repeat=repeat
    )
    return {
        "bound": bound,
        "monomials": total,
        "seconds": seconds,
        "variable_loss": result.variable_loss,
    }


def bench_abstraction(provenance, forest, repeat):
    mapping = forest.root_vvs().mapping()
    sub_seconds, abstracted = time_call(
        abstract, provenance, forest.root_vvs(), repeat=repeat
    )
    count_seconds, counts = time_call(
        abstract_counts, provenance, mapping, repeat=repeat
    )
    if (abstracted.num_monomials, abstracted.num_variables) != counts:
        raise AssertionError("abstract_counts disagrees with materialization")
    return {
        "monomials": provenance.num_monomials,
        "abstracted_monomials": counts[0],
        "seconds_substitute": sub_seconds,
        "seconds_counts": count_seconds,
    }


def bench_batch_valuation(provenance, scenarios, repeat):
    """The dense compiled batch vs. the per-scenario interpreter loop.

    Pinned to ``engine="dense"`` — this stage measures what batching
    itself buys; the delta engine has its own stage (sweep_delta).
    """
    def loop(polys, valuations):
        return [valuation.evaluate(polys) for valuation in valuations]

    def batch(polys, valuations):
        return polys.evaluate_batch(valuations, engine="dense")

    batch(provenance, scenarios[:1])  # compile outside the timer
    loop_seconds, loop_values = time_call(
        loop, provenance, scenarios, repeat=repeat
    )
    batch_seconds, batch_values = time_call(
        batch, provenance, scenarios, repeat=repeat
    )
    max_error = max(
        abs(batch_values[i, j] - row[j])
        for i, row in enumerate(loop_values)
        for j in range(len(row))
    )
    if max_error > 1e-6:
        raise AssertionError(f"batch valuation diverged: max error {max_error}")
    return {
        "scenarios": len(scenarios),
        "polynomials": len(provenance),
        "monomials": provenance.num_monomials,
        "seconds_loop": loop_seconds,
        "seconds_batch": batch_seconds,
        "speedup": loop_seconds / batch_seconds if batch_seconds else float("inf"),
        "max_abs_error": max_error,
    }


def sweep_workers():
    """Worker count for the sweep stage: the cores available, capped.

    Capped at 4 so the committed numbers stay comparable between
    typical CI runners and developer machines; floored at 2 so the
    process-pool path is exercised even on single-core boxes (where the
    recorded speedup honestly reports the overhead).
    """
    return max(2, min(4, os.cpu_count() or 1))


def bench_sweep(provenance, repeat, spec):
    """Serial vs. sharded evaluation of a Monte-Carlo sweep.

    The sweep is evaluated once per timing arm — serially (chunked, one
    process) and across a process pool whose workers regenerate their
    shards from the sweep spec. The two ``(S, P)`` matrices are
    asserted *bit-identical*; ``top_k`` over the same sweep is timed to
    track the streaming-analytics overhead. Both arms are pinned to
    ``engine="dense"`` so the stage keeps measuring what sharding
    itself buys (and stays comparable across baselines); the delta
    engine has its own stage.
    """
    sweep = Sweep.random(
        sorted(provenance.variables),
        spec["sweep_scenarios"],
        changes=spec["sweep_changes"],
        seed=17,
    )
    workers = sweep_workers()
    provenance.evaluate_batch([{}], engine="dense")  # compile outside timers
    serial_seconds, serial = time_call(
        evaluate_scenarios_parallel, provenance, sweep, workers=0,
        engine="dense", repeat=repeat,
    )
    parallel_seconds, parallel = time_call(
        evaluate_scenarios_parallel, provenance, sweep, workers=workers,
        min_parallel=0, engine="dense", repeat=repeat,
    )
    difference = abs(parallel - serial)
    max_error = float(difference.max()) if difference.size else 0.0
    if max_error != 0.0:
        raise AssertionError(
            f"parallel sweep diverged from serial: max error {max_error}"
        )
    top_seconds, ranked = time_call(
        top_k, provenance, sweep, 10, repeat=repeat
    )
    return {
        "scenarios": len(sweep),
        "changes_per_scenario": spec["sweep_changes"],
        "polynomials": len(provenance),
        "monomials": provenance.num_monomials,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "seconds_serial": serial_seconds,
        "seconds_parallel": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds
        if parallel_seconds else float("inf"),
        "max_abs_error": max_error,
        "seconds_top_k": top_seconds,
        "top_scenario": ranked[0].name if ranked else None,
    }


def bench_sweep_delta(spec, repeat, seed=23):
    """Dense vs. delta-aware sparse evaluation on a one-at-a-time sweep.

    The paper's workload shape: each scenario perturbs one variable
    around a shared baseline. ``engine="dense"`` rebuilds the full
    assignment matrix and recomputes every monomial per scenario;
    ``engine="delta"`` valuates the baseline once and per scenario
    recomputes only the monomials touching the changed variable,
    re-summing only their polynomial segments. Both compiled caches
    (the dense layers, the delta index + baseline) are warmed outside
    the timers, the two matrices are asserted **bit-identical**, and
    the measured speedup is gated by ``--check`` with a 5x contract
    floor.

    The stage builds its own provenance (``delta_polynomials`` ×
    ``delta_monomials`` over the mode's variable pools): sparse-delta
    speedup is a function of monomial volume, so it is measured at the
    scale the 5x contract is stated for even in ``--smoke`` runs.
    """
    pool = [f"s{i}" for i in range(spec["leaves"])]
    side_pool = [f"m{i}" for i in range(SIDE_TREE_LEAVES)]
    provenance = random_polynomials(
        spec["delta_polynomials"],
        spec["delta_monomials"],
        [pool, side_pool],
        seed=seed,
        extra_variables=spec["free_variables"],
    )
    sweep = Sweep.one_at_a_time(sorted(provenance.variables), (0.8, 1.2))
    compiled = provenance.compiled()
    warm = [{}]
    compiled.evaluate(warm, engine="dense")
    compiled.evaluate(warm, engine="delta")
    dense_seconds, dense = time_call(
        evaluate_scenarios_parallel, provenance, sweep, workers=0,
        engine="dense", repeat=repeat,
    )
    delta_seconds, delta = time_call(
        evaluate_scenarios_parallel, provenance, sweep, workers=0,
        engine="delta", repeat=repeat,
    )
    difference = abs(delta - dense)
    max_error = float(difference.max()) if difference.size else 0.0
    if max_error != 0.0:
        raise AssertionError(
            f"delta sweep diverged from dense: max error {max_error}"
        )
    return {
        "scenarios": len(sweep),
        "mean_changes": sweep.mean_changes(),
        "variables": provenance.num_variables,
        "polynomials": len(provenance),
        "monomials": provenance.num_monomials,
        "auto_engine": compiled.resolve_engine(
            "auto", mean_changes=sweep.mean_changes()
        ),
        "seconds_dense": dense_seconds,
        "seconds_delta": delta_seconds,
        "speedup": dense_seconds / delta_seconds
        if delta_seconds else float("inf"),
        "max_abs_error": max_error,
    }


def bench_compress_scale(spec, repeat, seed=31):
    """Object vs columnar end-to-end compress on a 10x-scale workload.

    Times ``ProvenanceSession.compress`` — solver plus ``P↓S``
    materialization plus artifact packaging — once with
    ``backend="object"`` (the tuple-walking reference) and once with
    ``backend="columnar"`` (the vectorized flat-array core of
    ``repro.core.columnar``) on a dedicated provenance of
    ``compress_polynomials × compress_monomials`` (~100k monomials in
    ``full`` mode, the scale the 5x contract is stated for). The two
    artifacts are asserted fully identical — same selected VVS, same
    ML/VL, same abstracted polynomials (coefficients here are ints, so
    merged sums are exact in both backends). The columnar factor
    arrays are cached on the polynomial set (like the compiled
    evaluator), so with ``repeat > 1`` the reported minimum reflects
    the warm-cache cost, matching the compile-outside-the-timer
    treatment of the valuation stages.
    """
    pool = [f"s{i}" for i in range(spec["leaves"])]
    side_pool = [f"m{i}" for i in range(SIDE_TREE_LEAVES)]
    provenance = random_polynomials(
        spec["compress_polynomials"],
        spec["compress_monomials"],
        [pool, side_pool],
        seed=seed,
        extra_variables=spec["free_variables"],
    )
    forest = AbstractionForest([
        layered_tree(pool, spec["fanouts"], prefix="sup"),
        layered_tree(side_pool, (4,), prefix="q"),
    ]).clean(provenance)
    session = ProvenanceSession.from_polynomials(provenance, forest)
    bound = max(1, provenance.num_monomials // 3)
    object_seconds, object_artifact = time_call(
        session.compress, bound, options=EvalOptions(backend="object"),
        repeat=repeat,
    )
    columnar_seconds, columnar_artifact = time_call(
        session.compress, bound, options=EvalOptions(backend="columnar"),
        repeat=repeat,
    )
    if sorted(object_artifact.vvs.labels) != sorted(columnar_artifact.vvs.labels):
        raise AssertionError("columnar compress selected a different VVS")
    if (object_artifact.monomial_loss, object_artifact.variable_loss) != (
        columnar_artifact.monomial_loss, columnar_artifact.variable_loss
    ):
        raise AssertionError("columnar compress reported different losses")
    if object_artifact != columnar_artifact:
        raise AssertionError("columnar compress artifact diverged from object")
    return {
        "bound": bound,
        "polynomials": len(provenance),
        "monomials": provenance.num_monomials,
        "variables": provenance.num_variables,
        "algorithm": object_artifact.algorithm,
        "monomial_loss": object_artifact.monomial_loss,
        "variable_loss": object_artifact.variable_loss,
        "abstracted_monomials": object_artifact.abstracted_size,
        "seconds_object": object_seconds,
        "seconds_columnar": columnar_seconds,
        "speedup": object_seconds / columnar_seconds
        if columnar_seconds else float("inf"),
    }


def bench_incremental(spec, repeat, seed=31):
    """Repair-path extend vs. from-scratch recompress after an append.

    Reuses the compress_scale workload shape (same pools, same forest,
    same bound recipe) plus one anchor polynomial touching every leaf,
    so the cleaned forest keeps its full alphabet whatever the random
    draw. A ~10% batch of new polynomials then arrives and the two ways
    of getting a current artifact race:

    * **scratch** — ``ProvenanceSession.compress`` over the extended
      provenance: full greedy solve + full ``P↓S`` materialization;
    * **repair** — ``CompressedProvenance.refresh`` (the
      ``repro.api.mutation`` pipeline): abstract only the delta under
      the existing cut, extend the columnar arrays and the compiled
      batch matrix in place, account losses arithmetically.

    ``refresh`` consumes its artifact (the mutation happens in place),
    so one fresh clone per repeat is rebuilt outside the timer via the
    JSON round-trip and warmed with an ``ask_many`` (the compiled
    evaluator the repair path must patch rather than rebuild). The
    repaired artifact's polynomials *and* its ``ask_many`` answers are
    asserted bit-identical to a from-scratch recompress at the same
    cut — ``abstract(extended, vvs)`` through the object backend, the
    tuple-walking reference — which is what makes the 5x contract a
    claim about a shortcut, not a different answer.
    """
    from repro.api.artifact import CompressedProvenance
    from repro.core.polynomial import Monomial, Polynomial, PolynomialSet

    pool = [f"s{i}" for i in range(spec["leaves"])]
    side_pool = [f"m{i}" for i in range(SIDE_TREE_LEAVES)]
    anchor = Polynomial({Monomial.of(leaf): 1 for leaf in pool + side_pool})
    base = PolynomialSet(list(random_polynomials(
        spec["compress_polynomials"],
        spec["compress_monomials"],
        [pool, side_pool],
        seed=seed,
        extra_variables=spec["free_variables"],
    )) + [anchor])
    added = random_polynomials(
        max(1, spec["compress_polynomials"] // 10),
        spec["compress_monomials"],
        [pool, side_pool],
        seed=seed + 1,
        extra_variables=spec["free_variables"],
    )
    extended = PolynomialSet(list(base) + list(added))
    forest = AbstractionForest([
        layered_tree(pool, spec["fanouts"], prefix="sup"),
        layered_tree(side_pool, (4,), prefix="q"),
    ]).clean(base)
    bound = max(1, base.num_monomials // 3)
    options = EvalOptions(backend="columnar")
    template = ProvenanceSession.from_polynomials(base, forest).compress(
        bound, options=options
    )
    scenarios = build_scenarios(base, 32, seed=17)

    # One pre-warmed clone per repeat: refresh mutates its artifact, so
    # a timed repeat must never see an already-extended one.
    payload = serialize.artifact_to_dict(template)
    clones = []
    for _ in range(repeat):
        clone = serialize.artifact_from_dict(payload)
        clone.ask_many(scenarios)
        clones.append(clone)
    mutations = []

    def repair():
        mutation = clones.pop().refresh(
            added, drift_limit=float("inf"), options=options
        )
        mutations.append(mutation)
        return mutation

    repair_seconds, mutation = time_call(repair, repeat=repeat)
    scratch_session = ProvenanceSession.from_polynomials(extended, forest)
    scratch_seconds, scratch = time_call(
        scratch_session.compress, bound, options=options, repeat=repeat
    )

    if mutation.path != "repaired":
        raise AssertionError(f"extend fell back to {mutation.path}")
    repaired = mutation.artifact
    reference = CompressedProvenance(
        abstract(extended, repaired.vvs, backend="object"),
        repaired.forest,
        repaired.vvs,
        algorithm=repaired.algorithm,
        bound=repaired.bound,
        original_size=extended.num_monomials,
        original_granularity=extended.num_variables,
        monomial_loss=repaired.monomial_loss,
        variable_loss=repaired.variable_loss,
    )
    if repaired.polynomials != reference.polynomials:
        raise AssertionError("repaired artifact diverged from same-cut rebuild")
    if (repaired.original_size, repaired.original_granularity) != (
        reference.original_size, reference.original_granularity
    ):
        raise AssertionError("repaired artifact misaccounted the originals")
    repaired_answers = [a.values for a in repaired.ask_many(scenarios)]
    rebuilt_answers = [a.values for a in reference.ask_many(scenarios)]
    if repaired_answers != rebuilt_answers:
        raise AssertionError("repaired answers diverged from recompress")
    return {
        "bound": bound,
        "polynomials": len(extended),
        "monomials": extended.num_monomials,
        "added_polynomials": mutation.added_polynomials,
        "added_monomials": mutation.added_monomials,
        "drift": mutation.drift,
        "path": mutation.path,
        "revision": mutation.revision,
        "scratch_algorithm": scratch.algorithm,
        "scenarios": len(scenarios),
        "seconds_scratch": scratch_seconds,
        "seconds_repair": repair_seconds,
        "speedup": scratch_seconds / repair_seconds
        if repair_seconds else float("inf"),
    }


def bench_artifact_io(spec, repeat, seed=31):
    """JSON parse vs. zero-copy mmap load of a saved artifact.

    Reuses the compress_scale workload (same seed, same shape) but
    compresses with ``bound = num_monomials`` — trivially satisfied, so
    the artifact retains the full provenance and both load arms move
    the quoted monomial volume (~95k in ``full`` mode). The JSON arm
    re-parses the tagged envelope and rebuilds every Python object; the
    binary arm ``mmap``\\ s the ``.rpb`` container and builds NumPy
    views over the map (``repro.core.binfmt``), deferring object
    materialization. Answers from the original and both reloads are
    asserted identical on a scenario probe — the formats must be
    indistinguishable to the analyst.
    """
    from repro.api.artifact import CompressedProvenance

    pool = [f"s{i}" for i in range(spec["leaves"])]
    side_pool = [f"m{i}" for i in range(SIDE_TREE_LEAVES)]
    provenance = random_polynomials(
        spec["compress_polynomials"],
        spec["compress_monomials"],
        [pool, side_pool],
        seed=seed,
        extra_variables=spec["free_variables"],
    )
    forest = AbstractionForest([
        layered_tree(pool, spec["fanouts"], prefix="sup"),
        layered_tree(side_pool, (4,), prefix="q"),
    ]).clean(provenance)
    session = ProvenanceSession.from_polynomials(provenance, forest)
    artifact = session.compress(provenance.num_monomials)
    probe = build_scenarios(provenance, 4, changes=8, seed=41)
    expected = artifact.ask_many(probe)
    with tempfile.TemporaryDirectory() as tmp:
        json_path = artifact.save(os.path.join(tmp, "artifact.json"))
        bin_path = artifact.save(os.path.join(tmp, "artifact.rpb"))
        json_bytes = os.path.getsize(json_path)
        bin_bytes = os.path.getsize(bin_path)
        json_seconds, from_json = time_call(
            CompressedProvenance.load, json_path, repeat=repeat
        )
        bin_seconds, from_bin = time_call(
            CompressedProvenance.load, bin_path, repeat=repeat
        )
        if from_json.ask_many(probe) != expected:
            raise AssertionError("JSON-reloaded artifact diverged")
        if from_bin.ask_many(probe) != expected:
            raise AssertionError("binary-reloaded artifact diverged")
    return {
        "polynomials": len(provenance),
        "monomials": artifact.abstracted_size,
        "json_bytes": json_bytes,
        "bin_bytes": bin_bytes,
        "seconds_json": json_seconds,
        "seconds_bin": bin_seconds,
        "speedup": json_seconds / bin_seconds
        if bin_seconds else float("inf"),
    }


def bench_session(provenance, forest, scenarios, repeat):
    """End-to-end facade: compress to an artifact, ask the whole suite.

    Also round-trips the artifact through its JSON envelope and asserts
    the reloaded artifact returns *identical* answers — the serving
    guarantee the api layer makes.
    """
    session = ProvenanceSession.from_polynomials(provenance, forest)
    bound = max(1, provenance.num_monomials // 3)
    compress_seconds, artifact = time_call(
        session.compress, bound, repeat=repeat
    )
    ask_seconds, answers = time_call(
        artifact.ask_many, scenarios, repeat=repeat
    )
    reloaded = serialize.loads(serialize.dumps(artifact))
    if reloaded.ask_many(scenarios) != answers:
        raise AssertionError("reloaded artifact diverged from the original")
    exact = sum(1 for answer in answers if answer.exact)
    return {
        "algorithm": artifact.algorithm,
        "bound": bound,
        "monomials": artifact.original_size,
        "abstracted_monomials": artifact.abstracted_size,
        "scenarios": len(scenarios),
        "exact_answers": exact,
        "artifact_bytes": serialize.serialized_size(artifact),
        "seconds_compress": compress_seconds,
        "seconds_ask": ask_seconds,
    }


#: Coalescing window of the service stage's batched arm (seconds).
SERVICE_WINDOW = 0.005

#: Per-request deadline for the service stage (seconds). The bench
#: measures the server as deployed — deadlines armed — while staying
#: far above any sane request latency, so the gate never trips on it.
#: No ``max_pending``: admission shedding would starve the closed-loop
#: client fleet and measure the shed path instead of the serve path.
SERVICE_DEADLINE = 30.0


def _host_service(spool, window, warm_lift, max_batch):
    """Boot the what-if service on a background event-loop thread.

    Returns ``(loop, thread, server)``; stop with :func:`_stop_service`.
    """
    import asyncio
    import threading

    from repro.service.app import start_service

    loop = asyncio.new_event_loop()
    ready = threading.Event()
    box = {}

    def host():
        asyncio.set_event_loop(loop)

        async def boot():
            box["server"] = await start_service(
                spool, window=window, warm_lift=warm_lift,
                max_batch=max_batch, deadline=SERVICE_DEADLINE,
            )

        loop.run_until_complete(boot())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    ready.wait()
    return loop, thread, box["server"]


def _stop_service(loop, thread, server):
    import asyncio

    asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=60)
    loop.close()


def _drive_service(port, artifact_id, changes_list, clients):
    """A closed-loop client fleet: ``clients`` threads, one keep-alive
    connection each, single-scenario asks split round-robin.

    Returns ``(wall_seconds, latencies, values)`` — latencies and
    answer-value tuples indexed like ``changes_list``.
    """
    import http.client
    import threading
    import time

    total = len(changes_list)
    latencies = [0.0] * total
    values = [None] * total
    errors = []
    barrier = threading.Barrier(clients + 1)

    def client(which):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            barrier.wait()
            for index in range(which, total, clients):
                body = json.dumps(
                    {"scenario": {"changes": changes_list[index]}}
                ).encode()
                begin = time.perf_counter()
                conn.request(
                    "POST", f"/artifacts/{artifact_id}/ask", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                latencies[index] = time.perf_counter() - begin
                if response.status != 200:
                    raise AssertionError(f"ask failed: {payload}")
                values[index] = tuple(payload["answers"][0]["values"])
        except BaseException as error:
            errors.append(error)
            barrier.abort()
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(which,))
        for which in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - begin
    if errors:
        raise errors[0]
    return seconds, latencies, values


def bench_service(spec, repeat, seed=47):
    """The serving stack against naive per-request dispatch.

    Boots the real asyncio HTTP server twice on a dedicated
    serving-shaped provenance — few polynomials, many monomials, a
    wide abstracted alphabet (``service_leaves`` under deep
    ``service_fanouts``), the "compress once, ask forever" artifact
    the paper's interactive setting implies — and drives each with the
    same closed-loop fleet of ``service_clients`` keep-alive
    connections issuing single-scenario asks:

    * **uncoalesced** — ``window=0`` (every request is its own batch)
      and ``warm_lift=False`` (each request pays the facade's full
      per-scenario lift walk): what a naive one-ask-per-request server
      does;
    * **coalesced** — the production configuration: requests landing
      within :data:`SERVICE_WINDOW` of each other merge into one
      evaluator call, fed by the per-artifact warm lift index.

    Reported: wall-clock requests/sec for both arms, p50/p99 request
    latency, the coalesced arm's batch-size histogram, and the gated
    ``speedup`` (uncoalesced seconds / coalesced seconds, best of
    ``repeat`` closed-loop rounds per arm). Every answer from both
    arms is asserted **bit-identical** to a direct
    ``CompressedProvenance.ask_many`` over the same scenarios.
    """
    import statistics

    pool = [f"s{i}" for i in range(spec["service_leaves"])]
    side_pool = [f"m{i}" for i in range(SIDE_TREE_LEAVES)]
    provenance = random_polynomials(
        spec["service_polynomials"],
        spec["service_monomials"],
        [pool, side_pool],
        seed=seed,
        extra_variables=spec["free_variables"],
    )
    forest = AbstractionForest([
        layered_tree(pool, spec["service_fanouts"], prefix="sup"),
        layered_tree(side_pool, (4,), prefix="q"),
    ]).clean(provenance)
    session = ProvenanceSession.from_polynomials(provenance, forest)
    bound = max(1, provenance.num_monomials // 3)
    artifact = session.compress(bound)

    rng = derive_rng(seed, "bench_service")
    variables = sorted(provenance.variables)
    changes_list = [
        {variables[rng.randrange(len(variables))]: rng.uniform(0.5, 1.5)}
        for _ in range(spec["service_requests"])
    ]
    expected = [
        answer.values
        for answer in artifact.ask_many([dict(c) for c in changes_list])
    ]
    clients = spec["service_clients"]

    arms = {}
    histogram = {}
    for arm, window, warm_lift in (
        ("uncoalesced", 0.0, False),
        ("coalesced", SERVICE_WINDOW, True),
    ):
        with tempfile.TemporaryDirectory() as spool:
            # max_batch = fleet size: a closed-loop round flushes the
            # moment every client's request has arrived, so the window
            # only pads the arrival tail instead of stalling each batch.
            loop, thread, server = _host_service(
                spool, window, warm_lift, max_batch=clients
            )
            try:
                artifact_id = server.service.store.put(artifact)
                best = None
                for _ in range(repeat):
                    seconds, latencies, values = _drive_service(
                        server.port, artifact_id, changes_list, clients
                    )
                    if values != expected:
                        raise AssertionError(
                            f"{arm} service answers diverged from direct "
                            "ask_many"
                        )
                    if best is None or seconds < best[0]:
                        best = (seconds, latencies)
                if arm == "coalesced":
                    histogram = dict(server.service.batcher.batch_sizes)
            finally:
                _stop_service(loop, thread, server)
        seconds, latencies = best
        hundredths = statistics.quantiles(latencies, n=100)
        arms[arm] = {
            "seconds": seconds,
            "rps": len(changes_list) / seconds,
            "p50_ms": hundredths[49] * 1e3,
            "p99_ms": hundredths[98] * 1e3,
        }

    batched = sum(size * count for size, count in histogram.items())
    return {
        "clients": clients,
        "requests": len(changes_list),
        "polynomials": len(provenance),
        "monomials": provenance.num_monomials,
        "bound": bound,
        "window_ms": SERVICE_WINDOW * 1e3,
        "seconds_uncoalesced": arms["uncoalesced"]["seconds"],
        "seconds_coalesced": arms["coalesced"]["seconds"],
        "rps_uncoalesced": arms["uncoalesced"]["rps"],
        "rps_coalesced": arms["coalesced"]["rps"],
        "p50_ms_uncoalesced": arms["uncoalesced"]["p50_ms"],
        "p99_ms_uncoalesced": arms["uncoalesced"]["p99_ms"],
        "p50_ms_coalesced": arms["coalesced"]["p50_ms"],
        "p99_ms_coalesced": arms["coalesced"]["p99_ms"],
        # All coalesced-arm rounds, not just the best-timed one.
        "batch_size_histogram": {
            str(size): count for size, count in sorted(histogram.items())
        },
        "mean_batch_size": (
            batched / sum(histogram.values()) if histogram else 0.0
        ),
        "speedup": arms["uncoalesced"]["seconds"]
        / arms["coalesced"]["seconds"]
        if arms["coalesced"]["seconds"] else float("inf"),
    }


def default_output():
    """``BENCH_core.json`` at the repository root (this file's parent's
    parent); falls back to the working directory outside a checkout."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, "BENCH_core.json")


def _merge_runs(path, entry, partial=False):
    """The schema document for ``path`` with ``entry`` merged in.

    An existing same-schema file keeps its *other* modes' runs — the
    committed baseline carries the ``full`` trajectory and the
    ``smoke`` entry CI gates on in one file. Any other content (older
    schemas, corrupt files) is replaced wholesale. A ``partial`` entry
    (a ``--stage``-filtered run) merges *into* the existing same-mode
    entry instead: the stages it did not run keep their results, and
    the entry's machine metadata (``python``, ``cpu_count``,
    ``workload``, ``repeat``) stays the full run's — it describes the
    bulk of the retained numbers, and the sweep floors are explained
    by the recorded ``cpu_count`` (a partial refresh must not
    relabel old multi-core ratios with a new box's core count).
    """
    runs = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
            stored = existing.get("runs")
            if isinstance(stored, dict):
                runs.update(stored)
    if partial:
        previous = runs.get(entry["mode"])
        if isinstance(previous, dict) and isinstance(
            previous.get("results"), dict
        ):
            merged = dict(previous)
            merged["results"] = {**previous["results"], **entry["results"]}
            entry = merged
    runs[entry["mode"]] = entry
    return {"schema": SCHEMA, "runs": runs}


def check_regression(entry, baseline, tolerance=DEFAULT_TOLERANCE,
                     stages=None):
    """Compare a run entry against a committed baseline document.

    Gates only the :data:`CHECK_FIELDS` — measured speedup ratios may
    not drop below ``baseline · (1 − tolerance)`` and error bounds may
    not rise above ``baseline · (1 + tolerance) + 1e-9``. Comparison is
    strictly same-mode: smoke runs check against the baseline's smoke
    entry, never against full-scale numbers. When ``stages`` names a
    ``--stage`` subset, only the gated fields of those stages are
    checked.

    :returns: a list of human-readable failure strings (empty = pass).
    """
    if not isinstance(baseline, dict) or baseline.get("schema") != SCHEMA:
        return [
            f"baseline schema is {baseline.get('schema')!r}, expected "
            f"{SCHEMA!r} — regenerate the baseline with this bench"
        ]
    base_entry = baseline.get("runs", {}).get(entry["mode"])
    if base_entry is None:
        return [
            f"baseline has no {entry['mode']!r} run — regenerate it with "
            f"`python -m repro bench --{entry['mode']}`"
        ]
    failures = []
    for stage, field, direction, floor_cap, min_cpus in CHECK_FIELDS:
        if stages is not None and stage not in stages:
            continue
        if min_cpus is not None:
            cpus = entry["results"].get(stage, {}).get(
                "cpu_count", entry.get("cpu_count")
            )
            if cpus is not None and cpus < min_cpus:
                # Parallel-ratio contracts need the cores to exist;
                # the measured number stays recorded, just ungated.
                continue
        base_value = base_entry.get("results", {}).get(stage, {}).get(field)
        if base_value is None:
            failures.append(f"baseline is missing {stage}.{field}")
            continue
        current = entry["results"][stage][field]
        if direction == "higher":
            floor = base_value * (1.0 - tolerance)
            if floor_cap is not None:
                floor = min(floor, floor_cap)
            if current < floor:
                failures.append(
                    f"{stage}.{field} regressed: {current:.3f} < "
                    f"{floor:.3f} (baseline {base_value:.3f}, "
                    f"tolerance {tolerance})"
                )
        else:
            ceiling = base_value * (1.0 + tolerance) + 1e-9
            if current > ceiling:
                failures.append(
                    f"{stage}.{field} regressed: {current:.3g} > "
                    f"{ceiling:.3g} (baseline {base_value:.3g}, "
                    f"tolerance {tolerance})"
                )
    return failures


def run(mode="full", repeat=3, output=None, quiet=False, write=True,
        stages=None):
    """Run the benches; merge into the JSON document and return it.

    ``write=False`` skips touching the output file (check-only runs).
    ``stages`` (a collection of :data:`STAGES` names) restricts the run
    to those stages; a partial run merges into — instead of replacing —
    the output's existing same-mode results.
    """
    def say(message):
        if not quiet:
            print(message, flush=True)

    if stages is not None:
        unknown = sorted(set(stages) - set(STAGES))
        if unknown:
            raise ValueError(
                f"unknown stage(s) {unknown}; expected names from {STAGES}"
            )

    def wanted(stage):
        return stages is None or stage in stages

    say(f"[bench_regression] mode={mode} repeat={repeat}"
        + (f" stages={','.join(s for s in STAGES if wanted(s))}"
           if stages is not None else ""))

    # The main workload is shared by most stages; build it (and the
    # scenario suite) only when a requested stage needs it.
    shared = {}

    def workload():
        if "built" not in shared:
            provenance, forest, single_tree = build_workload(mode)
            shared["built"] = (provenance, forest, single_tree)
            say(
                f"workload: {len(provenance)} polynomials, "
                f"{provenance.num_monomials} monomials, "
                f"{provenance.num_variables} variables"
            )
        return shared["built"]

    def scenarios():
        if "scenarios" not in shared:
            shared["scenarios"] = build_scenarios(
                workload()[0], MODES[mode]["scenarios"]
            )
        return shared["scenarios"]

    results = {}
    if wanted("greedy"):
        provenance, forest, _ = workload()
        results["greedy"] = bench_greedy(provenance, forest, repeat)
        say(
            "greedy: reference {seconds_reference:.3f}s -> incremental "
            "{seconds_incremental:.3f}s ({speedup:.1f}x, {rounds} rounds)"
            .format(**results["greedy"])
        )
    if wanted("optimal"):
        provenance, _, single_tree = workload()
        results["optimal"] = bench_optimal(provenance, single_tree, repeat)
        say("optimal: {seconds:.3f}s (bound {bound})".format(**results["optimal"]))
    if wanted("abstraction"):
        provenance, forest, _ = workload()
        results["abstraction"] = bench_abstraction(provenance, forest, repeat)
        say(
            "abstraction: substitute {seconds_substitute:.3f}s, "
            "counts {seconds_counts:.3f}s".format(**results["abstraction"])
        )
    if wanted("batch_valuation"):
        results["batch_valuation"] = bench_batch_valuation(
            workload()[0], scenarios(), repeat
        )
        say(
            "batch valuation: loop {seconds_loop:.3f}s -> batch "
            "{seconds_batch:.3f}s ({speedup:.1f}x over {scenarios} "
            "scenarios)".format(**results["batch_valuation"])
        )
    if wanted("sweep"):
        results["sweep"] = bench_sweep(workload()[0], repeat, MODES[mode])
        say(
            "sweep: serial {seconds_serial:.3f}s -> parallel "
            "{seconds_parallel:.3f}s ({speedup:.1f}x, {workers} workers on "
            "{cpu_count} cores, {scenarios} scenarios; top-k "
            "{seconds_top_k:.3f}s)".format(**results["sweep"])
        )
    if wanted("sweep_delta"):
        results["sweep_delta"] = bench_sweep_delta(MODES[mode], repeat)
        say(
            "sweep delta: dense {seconds_dense:.3f}s -> delta "
            "{seconds_delta:.3f}s ({speedup:.1f}x over {scenarios} "
            "one-at-a-time scenarios, auto={auto_engine})".format(
                **results["sweep_delta"]
            )
        )
    if wanted("compress_scale"):
        results["compress_scale"] = bench_compress_scale(MODES[mode], repeat)
        say(
            "compress scale: object {seconds_object:.3f}s -> columnar "
            "{seconds_columnar:.3f}s ({speedup:.1f}x end-to-end over "
            "{monomials} monomials, {algorithm})".format(
                **results["compress_scale"]
            )
        )
    if wanted("incremental"):
        results["incremental"] = bench_incremental(MODES[mode], repeat)
        say(
            "incremental: scratch {seconds_scratch:.3f}s -> repair "
            "{seconds_repair:.3f}s ({speedup:.1f}x, +{added_monomials} "
            "monomials appended, drift {drift:.2f}, {path})".format(
                **results["incremental"]
            )
        )
    if wanted("artifact_io"):
        results["artifact_io"] = bench_artifact_io(MODES[mode], repeat)
        say(
            "artifact io: json {seconds_json:.3f}s ({json_bytes} B) -> "
            "mmap {seconds_bin:.3f}s ({bin_bytes} B) ({speedup:.1f}x over "
            "{monomials} monomials)".format(**results["artifact_io"])
        )
    if wanted("session"):
        provenance, forest, _ = workload()
        results["session"] = bench_session(provenance, forest, scenarios(), repeat)
        say(
            "session: compress {seconds_compress:.3f}s ({algorithm}), "
            "ask {seconds_ask:.3f}s over {scenarios} scenarios "
            "({artifact_bytes} artifact bytes)".format(**results["session"])
        )

    if wanted("service"):
        results["service"] = bench_service(MODES[mode], repeat)
        say(
            "service: uncoalesced {rps_uncoalesced:.0f} req/s -> coalesced "
            "{rps_coalesced:.0f} req/s ({speedup:.1f}x, {clients} clients, "
            "{requests} asks, mean batch {mean_batch_size:.1f}, p99 "
            "{p99_ms_coalesced:.1f}ms)".format(**results["service"])
        )

    entry = {
        "mode": mode,
        "repeat": repeat,
        "workload": MODES[mode],
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "results": results,
    }
    path = output or default_output()
    document = _merge_runs(path, entry, partial=stages is not None)
    if write:
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        say(f"wrote {path}")
    return document


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench_regression",
        description="Time the hot paths; write BENCH_core.json",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--smoke", action="store_true",
                      help="reduced scale, finishes in well under 30 s")
    mode.add_argument("--tiny", action="store_true",
                      help="smallest scale (used by the test suite)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repeats; the minimum is reported")
    parser.add_argument("--output", help="where to write the JSON "
                        "(default: BENCH_core.json at the repo root)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare the run's speedup/error fields "
                             "against this baseline JSON; exit 1 on "
                             "regression")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative regression for --check "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--stage", action="append", choices=STAGES,
                        metavar="NAME",
                        help="run only this stage (repeatable); partial "
                             "runs merge into the output's existing "
                             "results and --check gates only the stages "
                             "that ran")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")
    if not 0 <= args.tolerance < 1:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    mode_name = "tiny" if args.tiny else "smoke" if args.smoke else "full"

    baseline = None
    if args.check:
        # Load the baseline *before* running: with the default output
        # path the run would otherwise overwrite the very numbers it is
        # checked against. A --check run without an explicit --output
        # is check-only and leaves the baseline file untouched.
        try:
            with open(args.check) as handle:
                baseline = json.load(handle)
        except OSError as error:
            raise SystemExit(f"--check: cannot read baseline: {error}")
        except ValueError as error:
            raise SystemExit(f"--check: baseline is not JSON: {error}")

    document = run(
        mode=mode_name, repeat=args.repeat, output=args.output,
        quiet=args.quiet, write=args.check is None or bool(args.output),
        stages=args.stage,
    )
    if baseline is None:
        return 0
    failures = check_regression(
        document["runs"][mode_name], baseline, args.tolerance,
        stages=args.stage,
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    checked = ", ".join(
        f"{s}.{f}" for s, f, _, _, _ in CHECK_FIELDS
        if args.stage is None or s in args.stage
    )
    if not args.quiet:
        print(f"check passed vs {args.check} (mode={mode_name}; {checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
