"""``repro.lint`` — AST-based invariant checks for this codebase.

The linter machine-enforces contracts that otherwise live only in
docstrings and property tests; INVARIANTS.md at the repository root
documents every rule. Run it as ``python -m repro lint [paths]``.
"""

from repro.lint.base import Checker, Finding, ModuleSource, suppressed_lines
from repro.lint.checkers import AST_CHECKERS
from repro.lint.data_checks import DATA_CHECKS
from repro.lint.runner import all_rules, run_lint

__all__ = [
    "AST_CHECKERS",
    "Checker",
    "DATA_CHECKS",
    "Finding",
    "ModuleSource",
    "all_rules",
    "run_lint",
    "suppressed_lines",
]
