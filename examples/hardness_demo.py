"""The Appendix A NP-hardness reduction, executed.

Solves vertex cover THROUGH the provenance-abstraction decision problem:
a graph becomes a uniformly partitioned polynomial with a flat
abstraction forest; a size-k cover exists iff a precise abstraction
exists for the reduction's (B, K).

Run:  python examples/hardness_demo.py
"""

from repro.core.abstraction import abstract_counts
from repro.core.polynomial import PolynomialSet
from repro.hardness import (
    Graph,
    build_instance,
    cover_to_cut,
    decide_vertex_cover_via_abstraction,
    has_vertex_cover,
    minimum_vertex_cover,
)
from repro.util import format_table


def main():
    # A 5-cycle: minimum vertex cover has size 3.
    graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    print(f"graph: {graph} (5-cycle)")
    print(f"minimum vertex cover: {sorted(minimum_vertex_cover(graph))}")

    instance = build_instance(graph, blowup=len(graph.edges))
    polynomial = instance.polynomial()
    print(f"\nreduction instance: P<X, n={instance.blowup}, I> with "
          f"{polynomial.num_monomials} monomials over "
          f"{polynomial.num_variables} variables")

    rows = []
    for k in range(1, graph.num_vertices):
        via_vc = has_vertex_cover(graph, k)
        via_abstraction = decide_vertex_cover_via_abstraction(
            graph, k, blowup=instance.blowup
        )
        rows.append([
            k,
            "yes" if via_vc else "no",
            "yes" if via_abstraction else "no",
            "agree" if via_vc == via_abstraction else "DISAGREE",
        ])
    print()
    print(format_table(
        ["k", "cover exists (brute force)", "precise abstraction exists",
         "verdict"],
        rows,
        title="Lemma 29 in action",
    ))

    # Show the precise abstraction a concrete cover induces.
    cover = minimum_vertex_cover(graph)
    vvs = cover_to_cut(instance, cover)
    size, granularity = abstract_counts(
        PolynomialSet([polynomial]), vvs.mapping()
    )
    print(f"\ncover {sorted(cover)} induces the cut with "
          f"|P↓S|_M = {size} (bound {instance.size_bound()}), "
          f"|P↓S|_V = {granularity} "
          f"(target K = {instance.granularity_for_cover_size(len(cover))})")


if __name__ == "__main__":
    main()
